"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        one benchmark under one prefetcher, full stats dump
``compare``    one benchmark under several prefetchers (speedup table)
``mix``        a multiprogrammed mix on the shared-LLC CMP
``frontend``   decoupled-front-end head-to-head: B-Fetch-I vs FDIP vs
               combined over the code-footprint-heavy server profiles
``table1``     the Table I storage-overhead accounting
``list``       available benchmarks and prefetchers (``--json`` for the
               machine-readable catalog the job server also exposes)
``serve``      long-lived job server (submit/status/result/cancel/stream
               over length-prefixed JSON frames; see docs/serving.md);
               ``--workers N`` runs a supervised subprocess fleet with
               heartbeat liveness + worker-loss requeue (docs/fleet.md)
``submit``     submit a run or sweep to a running server and (by
               default) wait for results, streaming progress;
               ``--deadline-ms`` sheds late jobs, ``--busy-retries``
               retries busy-class rejections with deterministic backoff
``jobs``       list a server's jobs; ``--stats`` dumps its ``serve.*``
               metrics registry; ``--workers`` shows the fleet +
               breaker states
``bench-perf`` perf micro-harness (simulated instr/sec, BENCH_*.json)
``cache``      result/trace cache maintenance (``--stats`` per-kind
               totals, ``--gc --older-than AGE`` safe eviction)
``stats``      gem5-style hierarchical stats dump for one fresh run
``trace``      structured JSONL event trace for one fresh run
``check``      run under the runtime invariant sanitizer; on a violation
               auto-bisect the first bad cycle from the last checkpoint

Crash safety: ``run`` takes ``--checkpoint-every N`` /
``--checkpoint-dir DIR`` / ``--resume`` -- the simulation state is
persisted every N cycles (atomic, integrity-enveloped) and an
interrupted run (SIGINT/SIGTERM/``kill -9``) resumes from the last
checkpoint with *byte-identical* results (see
:mod:`repro.checkpoint` and docs/checkpointing.md).  All numeric
arguments are validated up front: non-positive instruction budgets,
intervals or worker counts are argparse errors, and unknown
benchmark/prefetcher names are rejected by ``choices=`` before any
simulation state is built.

Observability: ``stats`` and ``trace`` always simulate fresh (never the
result cache) because they read live component state -- the
:class:`~repro.obs.StatsRegistry` built at system assembly and the
:class:`~repro.obs.Tracer` event buffer.  Set ``REPRO_TRACE`` to attach
a tracer to any other command's runs (see :mod:`repro.obs.trace`).

Parallelism: ``--jobs N`` (or the ``REPRO_JOBS`` environment variable)
fans independent runs out over a process pool; results are byte-identical
to serial execution.

Robustness: ``--retries N``, ``--task-timeout S`` and
``--on-error {raise,skip,serial}`` (or ``REPRO_RETRIES`` /
``REPRO_TASK_TIMEOUT`` / ``REPRO_ON_ERROR``) configure the
:class:`~repro.resilience.FailurePolicy` -- failed or hung jobs are
retried with deterministic backoff, a broken worker pool is rebuilt, and
each batch's :class:`~repro.resilience.BatchReport` is printed to stderr
whenever anything beyond plain cache hits/misses happened.
"""

import argparse
import math
import os
import sys

from repro.analysis import overhead_table, render_table
from repro.frontend import FRONTEND_MODES, IPREFETCHER_NAMES
from repro.resilience import ON_ERROR_MODES, FailurePolicy
from repro.sim import CMPSystem, ExperimentRunner, RunRequest, SystemConfig
from repro.sim.catalog import catalog, render_catalog
from repro.sim.config import PREFETCHER_NAMES
from repro.sim.metrics import weighted_speedup
from repro.workloads import BENCHMARKS, build_workload


def _positive_int(text):
    """Argparse type: a strictly positive integer, rejected up front."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected an integer, got %r" % (text,)
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "expected a positive integer, got %d" % value
        )
    return value


def _positive_float(text):
    """Argparse type: a strictly positive float, rejected up front."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a number, got %r" % (text,)
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "expected a positive number, got %r" % (text,)
        )
    return value


def _add_common(parser):
    parser.add_argument("-n", "--instructions", type=_positive_int,
                        default=100_000,
                        help="dynamic instructions to simulate")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for memoised results")
    parser.add_argument("-j", "--jobs", type=_positive_int, default=None,
                        help="worker processes for independent runs "
                             "(default: REPRO_JOBS or cpu count)")
    _add_resilience(parser)


def _add_resilience(parser):
    parser.add_argument("--retries", type=int, default=None,
                        help="retry budget per failed/hung job "
                             "(default: REPRO_RETRIES or 2)")
    parser.add_argument("--task-timeout", type=_positive_float, default=None,
                        help="per-task timeout in seconds before a job is "
                             "declared hung and retried "
                             "(default: REPRO_TASK_TIMEOUT or none)")
    parser.add_argument("--on-error", choices=ON_ERROR_MODES, default=None,
                        help="what to do with a job that exhausts its "
                             "retries: raise a structured error, skip it, "
                             "or run it serially in-process "
                             "(default: REPRO_ON_ERROR or raise)")


def _make_policy(args):
    return FailurePolicy.from_env(
        retries=getattr(args, "retries", None),
        task_timeout=getattr(args, "task_timeout", None),
        on_error=getattr(args, "on_error", None),
    )


def _make_runner(args):
    return ExperimentRunner(cache_dir=args.cache_dir,
                            jobs=getattr(args, "jobs", None),
                            policy=_make_policy(args))


def _report_batch(runner):
    """Surface the last BatchReport on stderr when it was eventful."""
    report = runner.last_report
    if report is not None and report.eventful:
        print("[resilience] " + report.summary(), file=sys.stderr)
        for failure in report.failures:
            print("[resilience] " + failure.describe(), file=sys.stderr)


def cmd_run(args):
    if args.checkpoint_every or args.checkpoint_dir or args.resume:
        # funnel the flags into the environment knobs the runner (and its
        # pool workers) read; resume is automatic whenever a checkpoint
        # for the same run exists in the directory
        os.environ["REPRO_CKPT_DIR"] = (args.checkpoint_dir
                                        or ".repro-checkpoints")
        if args.checkpoint_every:
            os.environ["REPRO_CKPT_EVERY"] = str(args.checkpoint_every)
    runner = _make_runner(args)
    config = None
    if args.frontend != "off" or args.iprefetcher != "none":
        config = SystemConfig(prefetcher=args.prefetcher,
                              frontend=args.frontend,
                              iprefetcher=args.iprefetcher)
    result = runner.run_single(args.benchmark, args.prefetcher,
                               args.instructions, config)
    for key, value in sorted(result.as_dict().items()):
        print("%-22s %s" % (key, value))
    return 0


def cmd_frontend(args):
    """The B-Fetch-I vs FDIP vs combined head-to-head table."""
    runner = _make_runner(args)
    for benchmark in args.benchmarks:
        base = runner.run_single(benchmark, args.prefetcher,
                                 args.instructions)
        print("%s (frontend=off baseline: ipc %.3f)"
              % (benchmark, base.ipc))
        print("  %-11s %7s %8s %9s %7s %7s %7s %8s"
              % ("IPREFETCH", "IPC", "SPEEDUP", "L1I-MISS", "FTQ-OCC",
                 "SHADOW", "COVER", "SH-HITS"))
        for iprefetcher in IPREFETCHER_NAMES:
            config = SystemConfig(prefetcher=args.prefetcher,
                                  frontend="ftq",
                                  iprefetcher=iprefetcher)
            result = runner.run_single(benchmark, args.prefetcher,
                                       args.instructions, config)
            l1i = result.data["l1i"]
            fe = result.data["frontend"]
            miss_rate = l1i["misses"] / max(l1i["accesses"], 1)
            occupancy = (fe["ftq_occupancy_sum"]
                         / max(fe["ftq_occupancy_samples"], 1))
            shadow_rate = (fe["shadow_hits"]
                           / max(fe["shadow_fills"], 1))
            coverage = (l1i["prefetch_useful"]
                        / max(l1i["prefetch_useful"] + l1i["misses"], 1))
            print("  %-11s %7.3f %7.2fx %8.1f%% %7.1f %6.1f%% %6.1f%% %8d"
                  % (iprefetcher, result.ipc, result.ipc / base.ipc,
                     miss_rate * 100, occupancy, shadow_rate * 100,
                     coverage * 100, fe["shadow_hits"]))
    _report_batch(runner)
    return 0


def cmd_compare(args):
    runner = _make_runner(args)
    batch = runner.run_many(
        [RunRequest(args.benchmark, "none", args.instructions)]
        + [RunRequest(args.benchmark, prefetcher, args.instructions)
           for prefetcher in args.prefetchers]
    )
    _report_batch(runner)
    base, results = batch[0], batch[1:]
    if base is None:
        print("error: baseline run failed (skipped under --on-error=skip)",
              file=sys.stderr)
        return 1
    rows = []
    failed = []
    for prefetcher, result in zip(args.prefetchers, results):
        if result is None:  # skipped under --on-error=skip
            failed.append(prefetcher)
            continue
        stats = result.data["prefetch"]
        rows.append((prefetcher, {
            "ipc": result.ipc,
            "speedup": result.ipc / base.ipc,
            # disjoint outcomes: demanded = useful (in time) + late
            "demanded": float(stats["useful"] + stats["late"]),
            "useless": float(stats["useless"]),
        }))
    print(render_table("%s (%d instructions)"
                       % (args.benchmark, args.instructions),
                       rows, ["ipc", "speedup", "demanded", "useless"]))
    for prefetcher in failed:
        print("note: %s run failed and was skipped" % prefetcher,
              file=sys.stderr)
    return 0


def cmd_mix(args):
    runner = _make_runner(args)
    singles_batch = runner.run_many(
        [RunRequest(name, "none", args.instructions)
         for name in args.apps]
    )
    _report_batch(runner)
    if any(result is None for result in singles_batch):
        print("error: a solo-IPC run failed (skipped under "
              "--on-error=skip); cannot compute weighted speedups",
              file=sys.stderr)
        return 1
    singles = [result.ipc for result in singles_batch]
    baseline = None
    rows = []
    for prefetcher in args.prefetchers:
        cmp_system = CMPSystem(
            [build_workload(name) for name in args.apps],
            SystemConfig(prefetcher=prefetcher),
        )
        results = cmp_system.run(args.instructions)
        ws = weighted_speedup([r.ipc for r in results], singles,
                              benchmarks=args.apps)
        if baseline is None:
            baseline = ws
        rows.append((prefetcher, {
            "wspeedup": ws,
            "normalized": ws / baseline,
        }))
    print(render_table("mix: %s" % "+".join(args.apps), rows,
                       ["wspeedup", "normalized"]))
    return 0


def cmd_table1(args):
    rows, bf_total, sms_total = overhead_table()
    for owner, name, entries, size in rows:
        print("%-8s %-28s %8s %8.3f KB"
              % (owner, name, entries if entries else "-", size))
    print("B-Fetch uses %.0f%% less storage than SMS"
          % (100 * (1 - bf_total / sms_total)))
    return 0


def cmd_bench_perf(args):
    from repro.perf import run_perf_suite, write_bench_json
    from repro.perf.harness import render_summary

    sweep_benchmarks = None
    if args.sweep:
        sweep_benchmarks = (
            list(BENCHMARKS) if args.sweep_benchmarks is None
            else args.sweep_benchmarks
        )
    payload = run_perf_suite(
        benchmark=args.benchmark,
        instructions=args.instructions,
        sweep_benchmarks=sweep_benchmarks,
        sweep_instructions=args.sweep_instructions,
        jobs=args.jobs if args.jobs is not None else 4,
        label=args.label,
        policy=_make_policy(args),
        serve=args.serve,
        serve_instructions=args.serve_instructions,
        trace_replay=args.trace_replay,
        trace_replay_instructions=args.trace_replay_instructions,
        batch=args.batch,
        batch_instructions=args.batch_instructions,
        load=args.load,
        load_requests=args.load_requests,
        load_clients=args.load_clients,
        load_instructions=args.load_instructions,
    )
    print(render_summary(payload))
    if not args.no_write:
        path = write_bench_json(payload, args.out)
        print("wrote %s" % path)
    return 0


def cmd_stats(args):
    import json as _json

    from repro.sim.system import System
    from repro.workloads.spec import build_workload as _build

    system = System(_build(args.benchmark),
                    SystemConfig(prefetcher=args.prefetcher,
                                 frontend=args.frontend,
                                 iprefetcher=args.iprefetcher))
    system.run(args.instructions)
    if args.json:
        print(_json.dumps(system.stats.as_dict(), indent=2, sort_keys=True))
    else:
        print(system.stats.format(args.filter))
    return 0


def cmd_trace(args):
    from repro.obs import Tracer
    from repro.obs.trace import TraceConfigError, parse_trace_spec
    from repro.sim.system import System
    from repro.workloads.spec import build_workload as _build

    try:
        rates = parse_trace_spec(args.categories)
    except TraceConfigError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    tracer = Tracer(rates, path=args.out)
    system = System(_build(args.benchmark),
                    SystemConfig(prefetcher=args.prefetcher),
                    tracer=tracer)
    system.run(args.instructions)
    counts = tracer.counts()
    total = sum(counts.values())
    for category in sorted(counts):
        print("%-10s %8d events" % (category, counts[category]),
              file=sys.stderr)
    print("%-10s %8d events -> %s" % ("total", total, args.out),
          file=sys.stderr)
    return 0


def cmd_check(args):
    """Run one benchmark under the invariant sanitizer.

    Clean run: prints the check count and headline stats, exits 0.  On a
    violation the divergence sentinel replays from the last checkpoint
    with per-cycle full checks and prints a report naming the first bad
    cycle, exiting 1.  ``--inject-at CYCLE`` deliberately corrupts the
    microarchitectural state mid-run (the same deterministic damage as
    the ``corrupt-state`` fault verb) to demonstrate the pipeline.
    """
    import shutil
    import tempfile

    from repro.checkpoint import Checkpointer
    from repro.sanitize import Sanitizer, sentinel_run
    from repro.sim.system import System

    config = SystemConfig(prefetcher=args.prefetcher)
    benchmark = args.benchmark

    def factory():
        return System(build_workload(benchmark), config)

    sanitizer = Sanitizer(args.level, interval=args.interval,
                          snapshot_dir=args.snapshot_dir)
    tmpdir = tempfile.mkdtemp(prefix="repro-check-")
    try:
        every = args.checkpoint_every
        if every is None:
            # checkpoint at half the injection depth (so the bisect has a
            # pre-corruption state to replay from) or the package default
            every = max(1, args.inject_at // 2) if args.inject_at else None
        checkpointer = Checkpointer(
            os.path.join(tmpdir, "check.ckpt.json"),
            **({"every": every} if every is not None else {})
        )
        result, report = sentinel_run(
            factory, args.instructions, checkpointer=checkpointer,
            sanitizer=sanitizer, corrupt_at=args.inject_at,
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    if report is None:
        print("sanitizer: clean (%d checks at level=%s, interval=%d cycles)"
              % (sanitizer.checks_run, sanitizer.mode, sanitizer.interval))
        print("%-22s %s" % ("ipc", result.ipc))
        print("%-22s %s" % ("cycles", result.data["cycles"]))
        return 0
    print(report.describe(), file=sys.stderr)
    return 1


_DURATION_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def _duration_seconds(text):
    """Argparse type: a duration like ``30d``, ``12h``, ``45m`` or bare
    seconds; strictly positive and finite.

    Accepted forms: a number with one optional trailing unit from
    ``s``/``m``/``h``/``d``/``w`` (seconds, minutes, hours, days,
    weeks; no unit means seconds).  ``nan``/``inf``, zero, negatives
    and anything malformed (mixed forms like ``1h30m``, stray text,
    empty input) raise :class:`argparse.ArgumentTypeError` naming the
    accepted units.
    """
    units = "/".join(sorted(_DURATION_UNITS, key=_DURATION_UNITS.get))
    malformed = argparse.ArgumentTypeError(
        "expected a positive duration: a number with an optional unit "
        "suffix %s (e.g. '30d', '12h', '45m', '90'), got %r"
        % (units, text)
    )
    raw = text.strip().lower()
    unit = 1
    if raw and raw[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[raw[-1]]
        raw = raw[:-1]
    # float() accepts 'nan', 'inf' and '1_0'; none of them is a duration
    if not raw or raw[-1] not in "0123456789." or "_" in raw:
        raise malformed
    try:
        value = float(raw) * unit
    except ValueError:
        raise malformed
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            "expected a strictly positive finite duration, got %r "
            "(units: %s)" % (text, units)
        )
    return value


def cmd_cache(args):
    """Inspect or garbage-collect the on-disk result/trace cache."""
    runner = ExperimentRunner(cache_dir=args.cache_dir)
    if args.gc:
        if args.older_than is None:
            print("error: --gc requires --older-than", file=sys.stderr)
            return 2
        summary = runner.cache_gc(args.older_than, kind=args.kind)
        print("removed %d entries (%.1f KB)"
              % (summary["removed"], summary["bytes"] / 1024.0))
        return 0
    stats = runner.cache_stats(kind=args.kind)
    if not stats:
        if args.kind:
            print("cache %s has no %r entries"
                  % (args.cache_dir, args.kind))
        else:
            print("cache %s is empty or missing" % args.cache_dir)
        return 0
    total_entries = 0
    total_bytes = 0
    print("%-10s %8s %12s" % ("KIND", "ENTRIES", "BYTES"))
    for kind in sorted(stats):
        entry = stats[kind]
        total_entries += entry["entries"]
        total_bytes += entry["bytes"]
        print("%-10s %8d %12d" % (kind, entry["entries"], entry["bytes"]))
    print("%-10s %8d %12d" % ("total", total_entries, total_bytes))
    return 0


def cmd_list(args):
    if args.json:
        import json as _json

        print(_json.dumps(catalog(), indent=2, sort_keys=True))
    else:
        print(render_catalog())
    return 0


# ----------------------------------------------------------------------
# serving


def _add_server_address(parser):
    from repro.serve.client import DEFAULT_PORT

    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default: 127.0.0.1)")
    parser.add_argument("--port", type=_positive_int, default=DEFAULT_PORT,
                        help="server port (default: %d)" % DEFAULT_PORT)


def cmd_serve(args):
    import asyncio
    import signal

    from repro.serve import JobServer

    async def body():
        server = JobServer(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            high_water=args.high_water, max_concurrent=args.max_concurrent,
            batch_jobs=args.batch_jobs, policy=_make_policy(args),
            max_instructions=args.max_instructions,
            heartbeat_interval=args.heartbeat,
            stats_path=args.stats_out, trace_path=args.trace_out,
            drain_grace=args.drain_grace,
            workers=args.workers, beat_interval=args.beat_interval,
            cluster=(True if args.cluster else None),
            cluster_max_local=args.cluster_max_local,
            cluster_min_local=args.cluster_min_local,
            peer_port=args.peer_port, shard_tasks=args.shard_tasks,
        )
        await server.start()
        loop = asyncio.get_running_loop()

        def request_drain():
            loop.create_task(server.drain())

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, request_drain)
        host, port = server.address
        # readiness line: scripts wait for this before submitting
        print("serving on %s:%d" % (host, port), flush=True)
        await server.wait_closed()
        print("drained; bye", file=sys.stderr)

    asyncio.run(body())
    return 0


def cmd_node(args):
    """Run one remote cluster worker node against a coordinator."""
    from repro.serve.cluster.node import node_main

    argv = ["--connect", args.connect]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.node_id:
        argv += ["--node-id", args.node_id]
    argv += ["--beat-interval", str(args.beat_interval),
             "--batch-jobs", str(args.batch_jobs),
             "--peer-host", args.peer_host,
             "--peer-port", str(args.peer_port),
             "--replicas", str(args.replicas),
             "--reconnect-attempts", str(args.reconnect_attempts)]
    if args.max_entries is not None:
        argv += ["--max-entries", str(args.max_entries)]
    return node_main(argv)


def cmd_submit(args):
    from repro.serve import ServeClient, ServeError

    kwargs = {
        "instructions": args.instructions, "variant": args.variant,
        "priority": args.priority, "retries": args.retries,
        "on_error": args.on_error, "task_timeout": args.task_timeout,
        "deadline_ms": args.deadline_ms,
    }
    try:
        with ServeClient(args.host, args.port,
                         busy_retries=args.busy_retries) as client:
            if len(args.benchmarks) == 1 and len(args.prefetchers) == 1:
                ticket = client.submit(args.benchmarks[0],
                                       args.prefetchers[0], **kwargs)
            else:
                ticket = client.submit_sweep(args.benchmarks,
                                             args.prefetchers, **kwargs)
            job_id = ticket["job_id"]
            print("job %s%s (%d runs, queue depth %d)"
                  % (job_id,
                     " [coalesced]" if ticket.get("coalesced") else "",
                     ticket.get("runs", 0), ticket.get("queue_depth", 0)),
                  file=sys.stderr)
            if args.no_wait:
                print(job_id)
                return 0
            if args.stream:
                for event in client.stream(job_id):
                    fields = " ".join(
                        "%s=%s" % (key, event[key])
                        for key in ("done", "total", "elapsed", "error")
                        if key in event
                    )
                    print("[%s] %s %s" % (job_id, event.get("ev"), fields),
                          file=sys.stderr)
            reply = client.result(job_id, wait=True)
    except ServeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    _print_submit_results(args, reply)
    return 0


def _print_submit_results(args, reply):
    results = reply.get("result") or []
    batch = reply.get("batch") or {}
    requests = [(benchmark, prefetcher)
                for benchmark in args.benchmarks
                for prefetcher in args.prefetchers]
    for (benchmark, prefetcher), result in zip(requests, results):
        if result is None:
            print("%-12s %-8s skipped" % (benchmark, prefetcher))
            continue
        ipc = result["instructions"] / max(1, result["cycles"])
        print("%-12s %-8s ipc=%.4f cycles=%d"
              % (benchmark, prefetcher, ipc, result["cycles"]))
    if batch:
        print("batch: %d cached, %d computed, %d retries, %d skipped"
              % (batch.get("hits", 0), batch.get("misses", 0),
                 batch.get("retries", 0), batch.get("skipped", 0)),
              file=sys.stderr)


def cmd_jobs(args):
    from repro.serve import ServeClient, ServeError

    try:
        with ServeClient(args.host, args.port) as client:
            if args.stats:
                stats = client.statz()
                for name in sorted(stats):
                    print("%-40s %s" % (name, stats[name]))
                return 0
            if args.workers:
                return _print_fleet(client.fleet())
            reply = client.jobs(limit=args.limit)
    except ServeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    jobs = reply.get("jobs") or []
    if not jobs:
        print("no jobs")
        return 0
    print("%-8s %-10s %-6s %5s %9s %8s %s"
          % ("JOB", "STATE", "KIND", "RUNS", "DONE", "CLIENTS", "AGE"))
    for snap in jobs:
        print("%-8s %-10s %-6s %5d %5d/%-3d %8d %6.1fs"
              % (snap["job_id"], snap["state"], snap["kind"],
                 snap["runs"], snap["done"], snap["runs"],
                 snap["clients"], snap["age_seconds"]))
    queued = reply.get("queued") or []
    if queued:
        print("queued order: %s" % ", ".join(queued), file=sys.stderr)
    return 0


def _print_fleet(reply):
    """Render the ``fleet`` endpoint: worker/node rows + breakers."""
    workers = reply.get("workers") or []
    mode = reply.get("mode")
    if mode not in ("fleet", "cluster"):
        print("server is running the in-process tier (no fleet); "
              "start it with --workers N", file=sys.stderr)
    else:
        print("%-7s %-8s %-9s %-8s %7s %9s %9s"
              % ("WORKER", "PID", "STATE", "JOB", "MISSED", "RESPAWNS",
                 "DONE"))
        for row in workers:
            print("%-7d %-8s %-9s %-8s %7d %9d %9d"
                  % (row["worker"], row.get("pid") or "-", row["state"],
                     row.get("job") or "-", row["beats_missed"],
                     row["respawns"], row["jobs_done"]))
    if mode == "cluster":
        nodes = reply.get("nodes") or []
        if reply.get("degraded"):
            print("cluster DEGRADED: no live nodes "
                  "(running as a local fleet)", file=sys.stderr)
        if nodes:
            print("%-16s %-14s %-9s %-10s %8s %6s %6s %8s"
                  % ("NODE", "HOST", "STATE", "JOB", "RTT_MS",
                     "DONE", "STEAL", "PEER_HIT"))
            for row in nodes:
                rtt = row.get("rtt_ms")
                rate = row.get("peer_hit_rate")
                print("%-16s %-14s %-9s %-10s %8s %6d %6d %8s"
                      % (row["node"], row.get("host") or "-",
                         row["state"], row.get("job") or "-",
                         "%.2f" % rtt if rtt is not None else "-",
                         row["jobs_done"], row.get("steals", 0),
                         "%.2f" % rate if rate is not None else "-"))
    breakers = reply.get("breakers") or {}
    open_ones = {name: snap for name, snap in breakers.items()
                 if snap.get("state") != "closed"}
    if open_ones:
        for name, snap in sorted(open_ones.items()):
            print("breaker %-12s %s (failure rate %.2f over %d)"
                  % (name, snap["state"], snap["failure_rate"],
                     snap["events"]), file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="B-Fetch (MICRO-2014) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark/prefetcher")
    run.add_argument("benchmark", choices=BENCHMARKS)
    run.add_argument("prefetcher", choices=PREFETCHER_NAMES)
    run.add_argument("--checkpoint-every", type=_positive_int, default=None,
                     metavar="CYCLES",
                     help="persist a resumable checkpoint every CYCLES "
                          "simulated cycles (default: REPRO_CKPT_EVERY "
                          "or 50000 when checkpointing is enabled)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="checkpoint directory (default: REPRO_CKPT_DIR "
                          "or .repro-checkpoints)")
    run.add_argument("--frontend", choices=FRONTEND_MODES, default="off",
                     help="decoupled front end mode (ftq = FTQ-driven "
                          "fetch with L1-I timing and shadow-branch "
                          "BTB fills)")
    run.add_argument("--iprefetcher", choices=IPREFETCHER_NAMES,
                     default="none",
                     help="I-side prefetcher (requires --frontend ftq)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the checkpoint left by an "
                          "interrupted run (enables checkpointing; the "
                          "resume itself is automatic whenever a "
                          "checkpoint for this run exists)")
    _add_common(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="compare prefetchers")
    compare.add_argument("benchmark", choices=BENCHMARKS)
    compare.add_argument("--prefetchers", nargs="+",
                         default=["stride", "sms", "bfetch"],
                         choices=PREFETCHER_NAMES)
    _add_common(compare)
    compare.set_defaults(func=cmd_compare)

    mix = sub.add_parser("mix", help="run a multiprogrammed mix")
    mix.add_argument("apps", nargs="+", choices=BENCHMARKS)
    mix.add_argument("--prefetchers", nargs="+",
                     default=["none", "sms", "bfetch"],
                     choices=PREFETCHER_NAMES)
    _add_common(mix)
    mix.set_defaults(func=cmd_mix)

    frontend = sub.add_parser(
        "frontend",
        help="decoupled-front-end head-to-head (B-Fetch-I vs FDIP vs "
             "combined)",
    )
    frontend.add_argument("--benchmarks", nargs="+", choices=BENCHMARKS,
                          default=["nginx", "postgres", "verilator"],
                          help="workloads to compare on (default: the "
                               "code-footprint-heavy server profiles)")
    frontend.add_argument("--prefetcher", choices=PREFETCHER_NAMES,
                          default="none",
                          help="D-side prefetcher to run alongside")
    frontend.set_defaults(func=cmd_frontend)
    _add_common(frontend)

    table1 = sub.add_parser("table1", help="storage overhead accounting")
    table1.set_defaults(func=cmd_table1)

    bench = sub.add_parser(
        "bench-perf",
        help="time simulated instr/sec per component; write BENCH_*.json",
    )
    bench.add_argument("--benchmark", default="libquantum",
                       choices=BENCHMARKS,
                       help="workload used for the component timings")
    bench.add_argument("-n", "--instructions", type=_positive_int,
                       default=30_000,
                       help="instruction budget per component timing")
    bench.add_argument("--sweep", action="store_true",
                       help="also time a cold-cache serial-vs-parallel sweep")
    bench.add_argument("--sweep-benchmarks", nargs="+", default=None,
                       choices=BENCHMARKS,
                       help="benchmarks for the sweep (default: all)")
    bench.add_argument("--sweep-instructions", type=_positive_int,
                       default=10_000,
                       help="instruction budget per sweep run")
    bench.add_argument("--serve", action="store_true",
                       help="also bench job-server round trips "
                            "(jobs/s, p50/p95, cached vs uncached)")
    bench.add_argument("--serve-instructions", type=_positive_int,
                       default=4_000,
                       help="instruction budget per served job")
    bench.add_argument("--trace-replay", action="store_true",
                       help="also bench the trace substrate (record "
                            "cost, replay speedup, repeated-sweep "
                            "speedup vs lockstep)")
    bench.add_argument("--trace-replay-instructions", type=_positive_int,
                       default=10_000,
                       help="instruction budget per trace-replay "
                            "sweep run")
    bench.add_argument("--batch", action="store_true",
                       help="also bench the SoA batch kernel (sweep "
                            "via REPRO_BATCH=on vs lockstep and vs "
                            "scalar replay, repeated-sweep speedup)")
    bench.add_argument("--batch-instructions", type=_positive_int,
                       default=10_000,
                       help="instruction budget per batch sweep run")
    bench.add_argument("--load", action="store_true",
                       help="also bench the cluster tier under a "
                            "zipf-skewed synthetic client load "
                            "(jobs/s, p50/p99, cache-peer hit rate at "
                            "1 vs 2 nodes, with and without chaos)")
    bench.add_argument("--load-requests", type=_positive_int,
                       default=10_000,
                       help="synthetic client submissions per load "
                            "phase (default: 10000)")
    bench.add_argument("--load-clients", type=_positive_int, default=32,
                       help="concurrent synthetic client threads "
                            "(default: 32)")
    bench.add_argument("--load-instructions", type=_positive_int,
                       default=2_000,
                       help="instruction budget per loaded job "
                            "(default: 2000)")
    bench.add_argument("-j", "--jobs", type=_positive_int, default=None,
                       help="worker processes for the parallel sweep pass")
    bench.add_argument("--label", default=None,
                       help="free-form label stored in the JSON payload")
    bench.add_argument("--out", default=None,
                       help="output path (default benchmarks/perf/"
                            "BENCH_<timestamp>.json)")
    bench.add_argument("--no-write", action="store_true",
                       help="print the summary without writing a file")
    _add_resilience(bench)
    bench.set_defaults(func=cmd_bench_perf)

    stats = sub.add_parser(
        "stats",
        help="run fresh and print the hierarchical stats registry",
    )
    stats.add_argument("benchmark", choices=BENCHMARKS)
    stats.add_argument("prefetcher", choices=PREFETCHER_NAMES)
    stats.add_argument("-n", "--instructions", type=_positive_int,
                       default=100_000,
                       help="dynamic instructions to simulate")
    stats.add_argument("--filter", default=None, metavar="SUBSTRING",
                       help="only print stats whose dotted name contains "
                            "SUBSTRING (e.g. 'pf.' or 'mem.l1d')")
    stats.add_argument("--json", action="store_true",
                       help="emit the nested registry dump as JSON")
    stats.add_argument("--frontend", choices=FRONTEND_MODES, default="off",
                       help="decoupled front end mode")
    stats.add_argument("--iprefetcher", choices=IPREFETCHER_NAMES,
                       default="none",
                       help="I-side prefetcher (requires --frontend ftq)")
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="run fresh with the event tracer and write a JSONL trace",
    )
    trace.add_argument("benchmark", choices=BENCHMARKS)
    trace.add_argument("prefetcher", choices=PREFETCHER_NAMES)
    trace.add_argument("-n", "--instructions", type=_positive_int,
                       default=20_000,
                       help="dynamic instructions to simulate")
    trace.add_argument("--categories", default="all",
                       help="trace spec, e.g. 'all', 'bfetch', "
                            "'bfetch,cache:0.01' (category[:sample-rate])")
    trace.add_argument("--out", default="repro-trace.jsonl",
                       help="JSONL output path")
    trace.set_defaults(func=cmd_trace)

    check = sub.add_parser(
        "check",
        help="run under the invariant sanitizer; auto-bisect violations",
    )
    check.add_argument("benchmark", choices=BENCHMARKS)
    check.add_argument("prefetcher", choices=PREFETCHER_NAMES)
    check.add_argument("-n", "--instructions", type=_positive_int,
                       default=100_000,
                       help="dynamic instructions to simulate")
    check.add_argument("--level", choices=("cheap", "full"), default="full",
                       help="audit level (default: full)")
    check.add_argument("--interval", type=_positive_int, default=None,
                       metavar="CYCLES",
                       help="cycles between checks (default: 1024 for "
                            "full, 8192 for cheap)")
    check.add_argument("--checkpoint-every", type=_positive_int,
                       default=None, metavar="CYCLES",
                       help="checkpoint interval feeding the auto-bisect "
                            "replay (default: half of --inject-at, else "
                            "50000)")
    check.add_argument("--inject-at", type=_positive_int, default=None,
                       metavar="CYCLE",
                       help="deliberately corrupt microarchitectural "
                            "state at CYCLE to demonstrate detection "
                            "and first-bad-cycle bisection")
    check.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="dump the offending state here on a "
                            "violation (atomic, integrity-enveloped)")
    check.set_defaults(func=cmd_check)

    cache = sub.add_parser(
        "cache",
        help="inspect (--stats) or garbage-collect (--gc) the result/"
             "trace cache",
    )
    cache.add_argument("cache_dir", help="cache directory to operate on")
    cache.add_argument("--stats", action="store_true",
                       help="print per-kind entry counts and byte totals "
                            "(the default action)")
    cache.add_argument("--gc", action="store_true",
                       help="evict entries older than --older-than; safe "
                            "against concurrent writers")
    cache.add_argument("--older-than", type=_duration_seconds, default=None,
                       metavar="AGE",
                       help="age threshold for --gc: '30d', '12h', '45m' "
                            "or bare seconds")
    cache.add_argument("--kind", default=None, metavar="KIND",
                       help="restrict --stats/--gc to one entry kind "
                            "(e.g. 'single', 'trace')")
    cache.set_defaults(func=cmd_cache)

    lister = sub.add_parser("list", help="list benchmarks and prefetchers")
    lister.add_argument("--json", action="store_true",
                        help="emit the machine-readable catalog "
                             "(schema repro-catalog-v1) as JSON")
    lister.set_defaults(func=cmd_list)

    serve = sub.add_parser(
        "serve",
        help="run the job server (submit/status/result/cancel/stream)",
    )
    _add_server_address(serve)
    serve.add_argument("--cache-dir", default=None,
                       help="result-cache directory shared by every job")
    serve.add_argument("--high-water", type=_positive_int, default=64,
                       help="admission-queue bound; submissions past it "
                            "get a typed 'busy' error (default: 64)")
    serve.add_argument("--max-concurrent", type=_positive_int, default=2,
                       help="jobs executing simultaneously (default: 2; "
                            "ignored with --workers)")
    serve.add_argument("--workers", type=int, default=None,
                       metavar="N",
                       help="run N supervised worker subprocesses with "
                            "heartbeat liveness + loss requeue (default: "
                            "REPRO_WORKERS or 0 = in-process tier)")
    serve.add_argument("--beat-interval", type=_positive_float,
                       default=1.0, metavar="SECONDS",
                       help="fleet worker heartbeat period (default: 1)")
    serve.add_argument("--cluster", action="store_true",
                       help="run as a cluster coordinator: adopt remote "
                            "'repro node' workers, shard jobs with work "
                            "stealing, autoscale local workers, export "
                            "the cache over the cache-peer protocol "
                            "(REPRO_CLUSTER=1 works too; --workers sets "
                            "the initial local worker count)")
    serve.add_argument("--cluster-max-local", type=_positive_int,
                       default=4, metavar="N",
                       help="autoscaler ceiling for local workers in "
                            "cluster mode (default: 4)")
    serve.add_argument("--cluster-min-local", type=int, default=0,
                       metavar="N",
                       help="autoscaler floor for local workers in "
                            "cluster mode (default: 0)")
    serve.add_argument("--peer-port", type=int, default=0,
                       metavar="PORT",
                       help="cache-peer listener port in cluster mode "
                            "(default: 0 = ephemeral)")
    serve.add_argument("--shard-tasks", type=_positive_int, default=None,
                       metavar="N",
                       help="fixed shard size in cluster mode (default: "
                            "auto from live member count)")
    serve.add_argument("--batch-jobs", type=_positive_int, default=1,
                       help="worker processes per job batch "
                            "(default: 1 = in-thread serial)")
    serve.add_argument("--max-instructions", type=_positive_int,
                       default=10_000_000,
                       help="per-run instruction budget cap")
    serve.add_argument("--heartbeat", type=float, default=5.0,
                       help="seconds between heartbeat events for running "
                            "jobs; 0 disables (default: 5)")
    serve.add_argument("--drain-grace", type=_positive_float, default=30.0,
                       help="seconds a drain waits before cancelling "
                            "still-running jobs (default: 30)")
    serve.add_argument("--stats-out", default=None, metavar="PATH",
                       help="write the serve.* stats registry here as "
                            "JSON on drain")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a JSONL job-lifecycle trace here "
                            "('serve' category)")
    _add_resilience(serve)
    serve.set_defaults(func=cmd_serve)

    node = sub.add_parser(
        "node",
        help="run a remote cluster worker node (dials a --cluster "
             "coordinator, executes shards, replays after partitions)",
    )
    node.add_argument("--connect", required=True, metavar="HOST:PORT",
                      help="coordinator serve address to dial")
    node.add_argument("--cache-dir", default=None,
                      help="local result cache (default: a temp dir); "
                           "also exported over the cache-peer protocol")
    node.add_argument("--node-id", default=None,
                      help="stable node name (default: hostname-pid)")
    node.add_argument("--beat-interval", type=_positive_float, default=1.0,
                      metavar="SECONDS",
                      help="heartbeat period to the coordinator "
                           "(default: 1)")
    node.add_argument("--batch-jobs", type=_positive_int, default=1,
                      help="worker processes per shard batch (default: 1)")
    node.add_argument("--peer-host", default="127.0.0.1",
                      help="cache-peer listener bind address")
    node.add_argument("--peer-port", type=int, default=0,
                      help="cache-peer listener port (default: ephemeral)")
    node.add_argument("--replicas", type=_positive_int, default=2,
                      help="cache write replication factor (default: 2)")
    node.add_argument("--max-entries", type=_positive_int, default=None,
                      help="cache-peer eviction bound (entries)")
    node.add_argument("--reconnect-attempts", type=_positive_int,
                      default=20,
                      help="coordinator reconnect attempts before giving "
                           "up (default: 20)")
    node.set_defaults(func=cmd_node)

    submit = sub.add_parser(
        "submit",
        help="submit a run or sweep to a running job server",
    )
    submit.add_argument("benchmarks", nargs="+", choices=BENCHMARKS,
                        metavar="benchmark",
                        help="benchmark(s); several make a sweep")
    submit.add_argument("--prefetchers", nargs="+", default=["none"],
                        choices=PREFETCHER_NAMES,
                        help="prefetcher(s); several make a sweep "
                             "(default: none)")
    submit.add_argument("-n", "--instructions", type=_positive_int,
                        default=None,
                        help="dynamic instructions per run "
                             "(default: server default)")
    submit.add_argument("--variant", type=int, default=0,
                        help="workload variant seed (default: 0)")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority, higher runs first "
                             "(default: 0)")
    submit.add_argument("--deadline-ms", type=_positive_int, default=None,
                        metavar="MS",
                        help="shed the job with a deadline-exceeded error "
                             "if not finished within MS milliseconds")
    submit.add_argument("--busy-retries", type=int, default=0,
                        metavar="N",
                        help="retry busy-class rejections (busy / "
                             "circuit-open) up to N times with "
                             "deterministic backoff (default: 0)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and exit without waiting")
    submit.add_argument("--stream", action="store_true",
                        help="print lifecycle events while waiting")
    _add_server_address(submit)
    _add_resilience(submit)
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser("jobs", help="list a running server's jobs")
    jobs.add_argument("--limit", type=_positive_int, default=50,
                      help="job summaries to fetch (default: 50)")
    jobs.add_argument("--stats", action="store_true",
                      help="dump the server's serve.* metrics instead")
    jobs.add_argument("--workers", action="store_true",
                      help="show the worker fleet (id, state, current "
                           "job, missed beats, respawns), any adopted "
                           "cluster nodes (host, rtt, steals, cache-peer "
                           "hit rate) and any non-closed circuit "
                           "breakers instead")
    _add_server_address(jobs)
    jobs.set_defaults(func=cmd_jobs)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
