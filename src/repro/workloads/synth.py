"""User-defined synthetic workloads.

The 18 shipped profiles are calibrated stand-ins for SPEC; this module
lets downstream users compose the same kernel generators into *their
own* benchmarks from a declarative spec — e.g. to model a proprietary
workload's mix of streaming, record and pointer behaviour, or to build
adversarial inputs for a new prefetcher.

Example::

    from repro.workloads.synth import synthesize

    workload = synthesize(
        "mydb",
        phases=[
            {"kernel": "stream", "elems": 2000, "stride": 64, "work": 8,
             "footprint_mb": 4},
            {"kernel": "pointer_chase", "nodes": 4096, "hops": 800,
             "spread": 8},
            {"kernel": "branchy", "elems": 1000, "bias": 0.9,
             "step_taken": 256, "step_not": 64, "footprint_mb": 2},
            {"kernel": "compute", "iters": 500},
        ],
        seed=7,
    )

The result is a normal :class:`~repro.workloads.Workload`, runnable
through :class:`~repro.sim.System` or the CMP driver.
"""

import random

from repro.workloads import patterns as pat
from repro.workloads.builder import ProgramBuilder
from repro.workloads.workload import Workload

_MB = 1024 * 1024
_REGION = 16 * _MB

KERNELS = ("stream", "multistream", "region", "pointer_chase", "gather",
           "branchy", "compute", "matrix", "hot", "bigcode")


class _Allocator:
    """Hands out data-region base addresses and persistent registers."""

    def __init__(self):
        self._region = 0
        self._persistent = list(pat.PERSISTENT_REGS)

    def base(self):
        self._region += 1
        return _REGION * self._region + (self._region - 1) * 8256

    def persistent_reg(self):
        if not self._persistent:
            raise ValueError(
                "too many persistent-walk phases (max %d)"
                % len(pat.PERSISTENT_REGS)
            )
        return self._persistent.pop(0)


def _emit_phase(builder, memory, rng, alloc, prologue, spec):
    kernel = spec.get("kernel")
    if kernel not in KERNELS:
        raise ValueError(
            "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNELS))
        )
    work = spec.get("work", 0)
    if kernel == "stream":
        footprint = int(spec.get("footprint_mb", 0) * _MB)
        base = alloc.base()
        kwargs = {}
        if footprint:
            kwargs = dict(pos_reg=alloc.persistent_reg(), size=footprint,
                          prologue=prologue)
        pat.emit_stream(builder, base, spec.get("elems", 1000),
                        spec.get("stride", 8), work=work, **kwargs)
    elif kernel == "multistream":
        streams = []
        for stride in spec.get("strides", (64, 64)):
            footprint = int(spec.get("footprint_mb", 4) * _MB)
            streams.append((alloc.base(), stride, alloc.persistent_reg(),
                            footprint))
        pat.emit_multistream(builder, streams, spec.get("elems", 1000),
                             work=work, prologue=prologue)
    elif kernel == "region":
        footprint = int(spec.get("footprint_mb", 4) * _MB)
        pat.emit_region(builder, alloc.base(),
                        spec.get("region_bytes", 1024),
                        spec.get("offsets", [0, 128, 256]),
                        spec.get("regions", 800), work=work,
                        pos_reg=alloc.persistent_reg(), size=footprint,
                        prologue=prologue)
    elif kernel == "pointer_chase":
        head = pat.init_pointer_chain(
            memory, rng, alloc.base(), spec.get("nodes", 4096),
            spread=spec.get("spread", 8),
        )
        pat.emit_pointer_chase(builder, head, spec.get("hops", 1000),
                               work=work)
    elif kernel == "gather":
        idx_base = alloc.base()
        data_base = alloc.base()
        elems = spec.get("elems", 1000)
        pat.init_index_array(memory, rng, idx_base, elems,
                             spec.get("data_words", 128 * 1024))
        pat.emit_gather(builder, idx_base, data_base, elems, work=work)
    elif kernel == "branchy":
        pred_base = alloc.base()
        elems = spec.get("elems", 1000)
        pat.init_predicates(memory, rng, pred_base, elems,
                            spec.get("bias", 0.9))
        footprint = int(spec.get("footprint_mb", 4) * _MB)
        pat.emit_branchy(builder, pred_base, elems, alloc.base(),
                         spec.get("step_taken", 256),
                         spec.get("step_not", 64), work=work,
                         pos_reg=alloc.persistent_reg(), size=footprint,
                         prologue=prologue)
    elif kernel == "compute":
        pat.emit_compute(builder, spec.get("iters", 500),
                         spec.get("chain", 6))
    elif kernel == "matrix":
        pat.emit_matrix(builder, alloc.base(), spec.get("rows", 24),
                        spec.get("cols", 48),
                        row_pad=spec.get("row_pad", 0), work=work)
    elif kernel == "hot":
        pat.emit_hot(builder, alloc.base(), spec.get("size_bytes", 32768),
                     spec.get("iters", 500), work=work)
    elif kernel == "bigcode":
        pat.emit_bigcode(builder, spec.get("iters", 100),
                         blocks=spec.get("blocks", 128),
                         body_instrs=spec.get("body_instrs", 60))


def synthesize(name, phases, seed=0):
    """Build a :class:`~repro.workloads.Workload` from phase specs.

    :param name: workload name for reports.
    :param phases: list of kernel spec dicts (see module docstring).
    :param seed: RNG seed for the stochastic content.
    """
    if not phases:
        raise ValueError("need at least one phase")
    rng = random.Random("synth-%s-%d" % (name, seed))
    memory = {}
    prologue = []
    alloc = _Allocator()
    body = ProgramBuilder(name)
    body.label("outer")
    for spec in phases:
        _emit_phase(body, memory, rng, alloc, prologue, spec)
    body.br("outer")
    body.halt()
    final = ProgramBuilder(name)
    for reg, value in ((pat.R_ACC, 0),
                       (pat.R_SEED, rng.randrange(1, 1 << 30)),
                       (pat.R_W0, 1), (pat.R_W1, 2), (pat.R_W2, 3),
                       (pat.R_B1, 0x2000000)):
        final.li(reg, value)
    for reg, value in prologue:
        final.li(reg, value)
    final.append_builder(body)
    program = final.build()
    program.validate()
    return Workload(name, program, memory)
