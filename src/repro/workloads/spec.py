"""The 18 SPEC CPU2006 stand-in profiles.

Each profile composes the :mod:`~repro.workloads.patterns` kernels inside
one endless outer loop.  Laps are sized at roughly 20k-35k dynamic
instructions, so the default 200k-instruction window executes several full
laps -- enough for history prefetchers to train *and* replay, and for the
branch predictor to reach its steady state.

Large-working-set kernels use *persistent* walk positions (the stream
continues across laps through multi-megabyte regions) so memory-bound
benchmarks stay DRAM-bound for the whole run instead of becoming
cache-resident after the first lap.

Working-set classes mirror the paper's Fig. 1 behaviour:

* L1-resident compute (no prefetcher helps): calculix, gamess, gromacs,
  sjeng;
* large streaming (every prefetcher helps, a lot): bwaves, lbm, leslie3d,
  libquantum, sphinx;
* spatial/record (SMS's home turf; milc is its corner-case win):
  cactusADM, milc, zeusmp;
* irregular / control-flow dependent (B-Fetch's home turf): astar, bzip2,
  h264ref, hmmer, mcf, soplex.

Every profile is deterministic (seeded per benchmark name).
"""

import random

from repro.workloads import patterns as pat
from repro.workloads import server as srv
from repro.workloads.builder import ProgramBuilder
from repro.workloads.workload import Workload

_REGION = 16 * 1024 * 1024  # address-space spacing between data regions
_MB = 1024 * 1024

P0, P1, P2, P3, P4, P5 = pat.PERSISTENT_REGS

# Benchmarks the paper marks prefetch-sensitive (gained under the Perfect
# prefetcher in Fig. 1); the compute-bound four are the exceptions.
PREFETCH_SENSITIVE = (
    "astar", "bwaves", "bzip2", "cactusADM", "h264ref", "hmmer", "lbm",
    "leslie3d", "libquantum", "mcf", "milc", "soplex", "sphinx", "zeusmp",
)


class Profile:
    """Metadata + generator for one benchmark."""

    def __init__(self, name, emit, klass):
        self.name = name
        self.emit = emit
        self.klass = klass

    @property
    def prefetch_sensitive(self):
        return self.name in PREFETCH_SENSITIVE


def _bases(count):
    """Staggered region base addresses (stagger avoids every array
    starting at cache set 0)."""
    return [_REGION * (i + 1) + i * 8256 for i in range(count)]


# ----------------------------------------------------------------------
# profile generators: fn(b, mem, rng, pro) emits the loop-body phases;
# `pro` collects (register, initial value) pairs for the prologue.


def _astar(b, mem, rng, pro):
    chase_base, pred, walk, hot_base = _bases(4)
    head = pat.init_pointer_chain(mem, rng, chase_base, nodes=4096, spread=32)
    pat.init_predicates(mem, rng, pred, 1600, bias=0.91)
    pat.emit_pointer_chase(b, head, hops=1000)
    pat.emit_branchy(b, pred, 1600, walk, step_taken=320, step_not=64,
                     work=2, pos_reg=P0, size=4 * _MB, prologue=pro)
    pat.emit_hot(b, hot_base, 32 * 1024, iters=500)


def _bwaves(b, mem, rng, pro):
    a0, a1, a2 = _bases(3)
    pat.emit_multistream(
        b,
        [(a0, 64, P0, 4 * _MB), (a1, 64, P1, 4 * _MB), (a2, 64, P2, 4 * _MB)],
        elems=1400, work=20, prologue=pro,
    )
    pat.emit_compute(b, iters=150)


def _bzip2(b, mem, rng, pro):
    s_base, pred, walk, hot_base = _bases(4)
    pat.init_predicates(mem, rng, pred, 1400, bias=0.89)
    pat.emit_stream(b, s_base, elems=2000, stride=16, work=4,
                    pos_reg=P0, size=1 * _MB, prologue=pro)
    pat.emit_branchy(b, pred, 1400, walk, step_taken=192, step_not=64,
                     work=2, pos_reg=P1, size=2 * _MB, prologue=pro)
    pat.emit_hot(b, hot_base, 32 * 1024, iters=400)
    pat.emit_compute(b, iters=300)


def _cactus(b, mem, rng, pro):
    r_base, s_base = _bases(2)
    # clustered header fields plus two cold far fields: B-Fetch's
    # +-5-block patterns cover the header, SMS's 2KB regions cover all
    offsets = [0, 128, 256, 640, 896]
    pat.emit_region(b, r_base, region_bytes=1024, offsets=offsets,
                    regions=900, work=24, pos_reg=P0, size=4 * _MB, prologue=pro)
    pat.emit_stream(b, s_base, elems=800, stride=8, work=4)


def _calculix(b, mem, rng, pro):
    m_base, = _bases(1)
    pat.emit_compute(b, iters=1000)
    pat.emit_matrix(b, m_base, rows=24, cols=64)  # 12KB: L1-resident


def _gamess(b, mem, rng, pro):
    pat.emit_compute(b, iters=1200)
    pat.emit_hot(b, _bases(1)[0], 16 * 1024, iters=300)


def _gromacs(b, mem, rng, pro):
    s_base, = _bases(1)
    pat.emit_compute(b, iters=800)
    pat.emit_stream(b, s_base, elems=1200, stride=8, work=2)  # ~10KB: L1


def _h264ref(b, mem, rng, pro):
    m_base, pred, walk, idx, data = _bases(5)
    pat.init_predicates(mem, rng, pred, 1600, bias=0.90)
    pat.init_index_array(mem, rng, idx, 800, data_words=64 * 1024)
    pat.emit_matrix(b, m_base, rows=24, cols=32, row_pad=256)
    pat.emit_branchy(b, pred, 1600, walk, step_taken=384, step_not=128,
                     work=2, pos_reg=P0, size=4 * _MB, prologue=pro)
    pat.emit_gather(b, idx, data, elems=800, work=2)
    pat.emit_compute(b, iters=250)


def _hmmer(b, mem, rng, pro):
    s_base, m_base, pred, walk = _bases(4)
    pat.init_predicates(mem, rng, pred, 1200, bias=0.92)
    pat.emit_stream(b, s_base, elems=2000, stride=24, work=5,
                    pos_reg=P0, size=2 * _MB, prologue=pro)
    pat.emit_matrix(b, m_base, rows=24, cols=48)
    pat.emit_branchy(b, pred, 1200, walk, step_taken=192, step_not=64,
                     work=2, pos_reg=P1, size=2 * _MB, prologue=pro)


def _lbm(b, mem, rng, pro):
    a0, a1, r_base = _bases(3)
    pat.emit_multistream(
        b, [(a0, 64, P0, 4 * _MB), (a1, 64, P1, 4 * _MB)],
        elems=1100, work=16, prologue=pro,
    )
    offsets = [0, 64, 128, 192, 256, 320]
    pat.emit_region(b, r_base, region_bytes=512, offsets=offsets,
                    regions=600, work=14, pos_reg=P2, size=4 * _MB, prologue=pro)


def _leslie3d(b, mem, rng, pro):
    a0, a1, a2, r_base = _bases(4)
    pat.emit_multistream(
        b,
        [(a0, 64, P0, 4 * _MB), (a1, 128, P1, 6 * _MB), (a2, 64, P2, 4 * _MB)],
        elems=1100, work=14, prologue=pro,
    )
    pat.emit_region(b, r_base, region_bytes=256, offsets=[0, 64, 128],
                    regions=500, work=10, pos_reg=P3, size=3 * _MB, prologue=pro)
    pat.emit_compute(b, iters=150)


def _libquantum(b, mem, rng, pro):
    a0, = _bases(1)
    pat.emit_stream(b, a0, elems=3500, stride=64, work=1,
                    pos_reg=P0, size=6 * _MB, prologue=pro)
    pat.emit_compute(b, iters=100)


def _mcf(b, mem, rng, pro):
    chase_base, idx_base, data_base, pred, walk = _bases(5)
    head = pat.init_pointer_chain(mem, rng, chase_base, nodes=8192, spread=16)
    pat.init_index_array(mem, rng, idx_base, 1200, data_words=256 * 1024)
    pat.init_predicates(mem, rng, pred, 1000, bias=0.89)
    pat.emit_pointer_chase(b, head, hops=1200)
    pat.emit_gather(b, idx_base, data_base, elems=1200, work=3)
    pat.emit_branchy(b, pred, 1000, walk, step_taken=448, step_not=128,
                     work=2, pos_reg=P0, size=6 * _MB, prologue=pro)


def _milc(b, mem, rng, pro):
    r_base, = _bases(1)
    # one touch per 2KB region predicts the whole region: SMS's best case
    # two field clusters per 2KB record: the far cluster is beyond
    # B-Fetch's +-5-block patterns but inside SMS's spatial region
    offsets = [0, 64, 128, 192, 1024, 1088, 1152, 1216]
    pat.emit_region(b, r_base, region_bytes=2048, offsets=offsets,
                    regions=1000, work=28, pos_reg=P0, size=6 * _MB, prologue=pro)
    pat.emit_compute(b, iters=400)


def _sjeng(b, mem, rng, pro):
    hot_base, pred, walk = _bases(3)
    pat.init_predicates(mem, rng, pred, 500, bias=0.70)
    pat.emit_hot(b, hot_base, 32 * 1024, iters=600)
    pat.emit_compute(b, iters=900)
    pat.emit_branchy(b, pred, 500, walk, step_taken=128, step_not=0,
                     pos_reg=P0, size=128 * 1024, prologue=pro)


def _soplex(b, mem, rng, pro):
    idx_base, data_base, s_base, pred, walk = _bases(5)
    pat.init_index_array(mem, rng, idx_base, 2000, data_words=512 * 1024)
    pat.init_predicates(mem, rng, pred, 700, bias=0.90)
    pat.emit_gather(b, idx_base, data_base, elems=2000, work=3)
    pat.emit_stream(b, s_base, elems=1500, stride=8, work=3,
                    pos_reg=P0, size=1 * _MB, prologue=pro)
    pat.emit_branchy(b, pred, 700, walk, step_taken=320, step_not=64,
                     work=2, pos_reg=P1, size=4 * _MB, prologue=pro)


def _sphinx(b, mem, rng, pro):
    s_base, idx_base, data_base, m_base = _bases(4)
    pat.init_index_array(mem, rng, idx_base, 1000, data_words=128 * 1024)
    pat.emit_stream(b, s_base, elems=1800, stride=64, work=10,
                    pos_reg=P0, size=5 * _MB, prologue=pro)
    pat.emit_gather(b, idx_base, data_base, elems=1000, work=2)
    pat.emit_matrix(b, m_base, rows=24, cols=40)


def _zeusmp(b, mem, rng, pro):
    r_base, a0, a1 = _bases(3)
    offsets = [0, 64, 128, 320, 512, 704]
    pat.emit_region(b, r_base, region_bytes=1024, offsets=offsets,
                    regions=700, work=20, pos_reg=P0, size=3 * _MB,
                    prologue=pro)
    pat.emit_multistream(
        b, [(a0, 64, P1, 3 * _MB), (a1, 64, P2, 3 * _MB)],
        elems=700, work=12, prologue=pro,
    )


PROFILES = {
    "astar": Profile("astar", _astar, "irregular"),
    "bwaves": Profile("bwaves", _bwaves, "streaming"),
    "bzip2": Profile("bzip2", _bzip2, "irregular"),
    "cactusADM": Profile("cactusADM", _cactus, "spatial"),
    "calculix": Profile("calculix", _calculix, "compute"),
    "gamess": Profile("gamess", _gamess, "compute"),
    "gromacs": Profile("gromacs", _gromacs, "compute"),
    "h264ref": Profile("h264ref", _h264ref, "irregular"),
    "hmmer": Profile("hmmer", _hmmer, "irregular"),
    "lbm": Profile("lbm", _lbm, "streaming"),
    "leslie3d": Profile("leslie3d", _leslie3d, "streaming"),
    "libquantum": Profile("libquantum", _libquantum, "streaming"),
    "mcf": Profile("mcf", _mcf, "irregular"),
    "milc": Profile("milc", _milc, "spatial"),
    "sjeng": Profile("sjeng", _sjeng, "compute"),
    "soplex": Profile("soplex", _soplex, "irregular"),
    "sphinx": Profile("sphinx", _sphinx, "streaming"),
    "zeusmp": Profile("zeusmp", _zeusmp, "spatial"),
    # server-class code-footprint-heavy profiles (see workloads/server.py):
    # the decoupled front end's evaluation set
    "nginx": Profile("nginx", srv.nginx, "server"),
    "postgres": Profile("postgres", srv.postgres, "server"),
    "verilator": Profile("verilator", srv.verilator, "server"),
}

BENCHMARKS = tuple(sorted(PROFILES))

_CACHE = {}


def build_workload(name, variant=0):
    """Build (and memoise) the named benchmark workload.

    :param variant: seed index for the stochastic workload content
        (pointer-chain order, predicate patterns, gather indices).
        Variant 0 is the canonical calibrated instance; other variants
        share the same code structure with re-drawn data, for
        across-seed variability studies.
    """
    key = (name, variant)
    if key in _CACHE:
        return _CACHE[key]
    profile = PROFILES.get(name)
    if profile is None:
        raise KeyError(
            "unknown benchmark %r (known: %s)" % (name, ", ".join(BENCHMARKS))
        )
    seed = "repro-bfetch-" + name
    if variant:
        seed += "-v%d" % variant
    rng = random.Random(seed)
    memory = {}
    prologue = []
    body = ProgramBuilder(name)
    body.label("outer")
    profile.emit(body, memory, rng, prologue)
    body.br("outer")
    body.halt()
    # assemble: prologue initialisation, then the endless loop body
    final = ProgramBuilder(name)
    final.li(pat.R_ACC, 0)
    final.li(pat.R_SEED, rng.randrange(1, 1 << 30))
    final.li(pat.R_W0, 1)
    final.li(pat.R_W1, 2)
    final.li(pat.R_W2, 3)
    for reg, value in prologue:
        final.li(reg, value)
    final.append_builder(body)
    workload = Workload(name, final.build(), memory, profile)
    _CACHE[key] = workload
    return workload
