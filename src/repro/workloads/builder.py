"""Programmatic assembly of ISA programs.

:class:`ProgramBuilder` offers one emit method per opcode plus label
management, so kernel generators read like the assembly they produce.
"""

from repro.isa.instructions import Instr
from repro.isa.opcodes import Op
from repro.isa.program import Program


class ProgramBuilder:
    """Accumulates instructions and labels, then builds a Program."""

    def __init__(self, name="generated"):
        self.name = name
        self.instrs = []
        self.labels = {}
        self._uid = 0

    # ------------------------------------------------------------------

    def unique(self, stem):
        """Return a label name guaranteed unique within this builder."""
        self._uid += 1
        return "%s_%d" % (stem, self._uid)

    def label(self, name):
        """Bind *name* to the next emitted instruction."""
        if name in self.labels:
            raise ValueError("duplicate label %r" % name)
        self.labels[name] = len(self.instrs)
        return name

    def here(self):
        """Current instruction index."""
        return len(self.instrs)

    # ------------------------------------------------------------------
    # ALU

    def _emit(self, instr):
        self.instrs.append(instr)
        return instr

    def li(self, rd, imm):
        return self._emit(Instr(Op.LI, rd=rd, imm=imm))

    def mov(self, rd, ra):
        return self._emit(Instr(Op.MOV, rd=rd, ra=ra))

    def add(self, rd, ra, rb):
        return self._emit(Instr(Op.ADD, rd=rd, ra=ra, rb=rb))

    def sub(self, rd, ra, rb):
        return self._emit(Instr(Op.SUB, rd=rd, ra=ra, rb=rb))

    def mul(self, rd, ra, rb):
        return self._emit(Instr(Op.MUL, rd=rd, ra=ra, rb=rb))

    def xor(self, rd, ra, rb):
        return self._emit(Instr(Op.XOR, rd=rd, ra=ra, rb=rb))

    def and_(self, rd, ra, rb):
        return self._emit(Instr(Op.AND, rd=rd, ra=ra, rb=rb))

    def or_(self, rd, ra, rb):
        return self._emit(Instr(Op.OR, rd=rd, ra=ra, rb=rb))

    def sll(self, rd, ra, rb):
        return self._emit(Instr(Op.SLL, rd=rd, ra=ra, rb=rb))

    def srl(self, rd, ra, rb):
        return self._emit(Instr(Op.SRL, rd=rd, ra=ra, rb=rb))

    def cmpeq(self, rd, ra, rb):
        return self._emit(Instr(Op.CMPEQ, rd=rd, ra=ra, rb=rb))

    def cmplt(self, rd, ra, rb):
        return self._emit(Instr(Op.CMPLT, rd=rd, ra=ra, rb=rb))

    def addi(self, rd, ra, imm):
        return self._emit(Instr(Op.ADDI, rd=rd, ra=ra, imm=imm))

    def subi(self, rd, ra, imm):
        return self._emit(Instr(Op.SUBI, rd=rd, ra=ra, imm=imm))

    def andi(self, rd, ra, imm):
        return self._emit(Instr(Op.ANDI, rd=rd, ra=ra, imm=imm))

    def slli(self, rd, ra, imm):
        return self._emit(Instr(Op.SLLI, rd=rd, ra=ra, imm=imm))

    def srli(self, rd, ra, imm):
        return self._emit(Instr(Op.SRLI, rd=rd, ra=ra, imm=imm))

    # ------------------------------------------------------------------
    # memory

    def load(self, rd, imm, ra):
        return self._emit(Instr(Op.LOAD, rd=rd, ra=ra, imm=imm))

    def store(self, rb, imm, ra):
        return self._emit(Instr(Op.STORE, rb=rb, ra=ra, imm=imm))

    # ------------------------------------------------------------------
    # control flow (targets are label strings resolved at build())

    def beqz(self, ra, target):
        return self._emit(Instr(Op.BEQZ, ra=ra, target=target))

    def bnez(self, ra, target):
        return self._emit(Instr(Op.BNEZ, ra=ra, target=target))

    def bltz(self, ra, target):
        return self._emit(Instr(Op.BLTZ, ra=ra, target=target))

    def bgez(self, ra, target):
        return self._emit(Instr(Op.BGEZ, ra=ra, target=target))

    def br(self, target):
        return self._emit(Instr(Op.BR, target=target))

    def jr(self, ra):
        return self._emit(Instr(Op.JR, ra=ra))

    def nop(self):
        return self._emit(Instr(Op.NOP))

    def halt(self):
        return self._emit(Instr(Op.HALT))

    # ------------------------------------------------------------------

    def append_builder(self, other):
        """Append another builder's instructions, shifting its labels.

        Branch targets are stored as label names until :meth:`build`, so
        concatenation only needs the label table merged with an offset.
        """
        offset = len(self.instrs)
        for name, index in other.labels.items():
            if name in self.labels:
                raise ValueError("label %r defined in both builders" % name)
            self.labels[name] = index + offset
        for instr in other.instrs:
            if instr.target is not None and not isinstance(instr.target, str):
                raise ValueError(
                    "append_builder requires label-name targets, got %r"
                    % (instr.target,)
                )
        self.instrs.extend(other.instrs)
        return self

    def build(self, base_pc=0x1000):
        """Resolve labels and return the finished Program."""
        program = Program(self.instrs, labels=self.labels,
                          base_pc=base_pc, name=self.name)
        program.validate()
        return program
