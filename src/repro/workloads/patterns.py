"""Memory-access kernel generators.

Each ``emit_*`` function appends one phase of code to a
:class:`~repro.workloads.builder.ProgramBuilder` and (where needed)
initialises the memory image.  Kernels are written the way the paper's
motivating examples are: real base registers advanced by real arithmetic,
with loads addressed off those registers -- so the B-Fetch tables see the
same structure gem5 would extract from compiled SPEC code.

Two cross-cutting knobs shape memory intensity:

* ``work`` -- extra ALU operations per loop iteration (compute ballast,
  so memory-bound kernels are not *degenerately* memory-bound);
* ``pos_reg``/``size`` -- a *persistent* position register: the walk
  continues across outer-loop laps through a region of ``size`` bytes
  (with a cheap once-per-phase wrap check) instead of rescanning the same
  footprint, which is what keeps large-working-set benchmarks
  DRAM-bound for the whole run.

Persistent registers must come from :data:`PERSISTENT_REGS` and be
registered by the caller via the *prologue* list (``(reg, value)`` pairs
the workload builder initialises before the outer loop).

Register convention (kernels re-initialise what they use, so phases can
share registers):

======  =========================================
r1-6    temporaries / accumulators
r7,14,15 compute-ballast registers
r8-13   base and pointer registers
r16-18  loop counters
r20     persistent LCG state
r21-26  persistent walk positions
======  =========================================
"""

R_T0, R_T1, R_T2, R_ACC, R_V, R_T3 = 1, 2, 3, 4, 5, 6
R_W0, R_W1, R_W2 = 7, 14, 15
R_B0, R_B1, R_B2, R_B3, R_P, R_Q = 8, 9, 10, 11, 12, 13
R_C0, R_C1, R_C2 = 16, 17, 18
R_SEED = 20
PERSISTENT_REGS = (21, 22, 23, 24, 25, 26)

WORD = 8


def _ballast(b, work):
    """Emit *work* filler ALU instructions (a short dependence braid)."""
    for index in range(work):
        if index % 2:
            b.xor(R_W1, R_W1, R_W0)
        else:
            b.add(R_W0, R_W0, R_W2)


def _wrap_check(b, pos_reg, base, size):
    """Once-per-phase bound check resetting a persistent walk pointer."""
    skip = b.unique("wrap")
    b.li(R_T3, base + size)
    b.cmplt(R_T2, pos_reg, R_T3)
    b.bnez(R_T2, skip)
    b.li(pos_reg, base)
    b.label(skip)


def _walk_reg(b, base, pos_reg, size, prologue):
    """Resolve the base register for a (possibly persistent) walk."""
    if pos_reg is None:
        b.li(R_B0, base)
        return R_B0
    if pos_reg not in PERSISTENT_REGS:
        raise ValueError("pos_reg must come from PERSISTENT_REGS")
    if size is None or prologue is None:
        raise ValueError("persistent walks need size= and prologue=")
    prologue.append((pos_reg, base))
    _wrap_check(b, pos_reg, base, size)
    return pos_reg


def emit_stream(b, base, elems, stride=WORD, work=0, store_every=0,
                pos_reg=None, size=None, prologue=None):
    """Sequential/strided streaming read loop (libquantum/lbm style).

    Loads ``elems`` words spaced *stride* bytes, accumulating into a
    register; optionally stores the running sum back every
    ``store_every`` elements.  With *pos_reg* the stream continues across
    laps through ``size`` bytes.
    """
    reg = _walk_reg(b, base, pos_reg, size, prologue)
    loop = b.unique("stream")
    b.li(R_C0, elems)
    b.label(loop)
    b.load(R_T0, 0, reg)
    b.add(R_ACC, R_ACC, R_T0)
    if store_every:
        b.store(R_ACC, WORD * store_every, reg)
    _ballast(b, work)
    b.addi(reg, reg, stride)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def emit_multistream(b, streams, elems, work=0, prologue=None):
    """Several concurrent streams in one loop (bwaves/leslie3d style).

    :param streams: list of ``(base, stride)`` or
        ``(base, stride, pos_reg, size)`` tuples (max 4).
    """
    if not 1 <= len(streams) <= 4:
        raise ValueError("1..4 streams supported")
    scratch = (R_B0, R_B1, R_B2, R_B3)
    regs = []
    strides = []
    for position, stream in enumerate(streams):
        if len(stream) == 2:
            base, stride = stream
            reg = scratch[position]
            b.li(reg, base)
        else:
            base, stride, pos_reg, size = stream
            reg = _walk_reg(b, base, pos_reg, size, prologue)
        regs.append(reg)
        strides.append(stride)
    loop = b.unique("mstream")
    b.li(R_C0, elems)
    b.label(loop)
    for reg, stride in zip(regs, strides):
        b.load(R_T0, 0, reg)
        b.add(R_ACC, R_ACC, R_T0)
        b.addi(reg, reg, stride)
    _ballast(b, work)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def emit_region(b, base, region_bytes, offsets, regions, work=0,
                pos_reg=None, size=None, prologue=None):
    """Struct/record walk (cactusADM/milc/zeusmp style).

    Visits *regions* consecutive records of *region_bytes*, loading the
    fixed *offsets* within each -- the spatial-pattern shape SMS was built
    for.  All loads use the same base register, exercising B-Fetch's
    pos/negPatt block vectors (which only reach +-5 blocks; offsets wider
    than 320B are where SMS's 2KB regions win, per the paper's milc
    discussion).
    """
    reg = _walk_reg(b, base, pos_reg, size, prologue)
    loop = b.unique("region")
    b.li(R_C0, regions)
    b.label(loop)
    for offset in offsets:
        b.load(R_T0, offset, reg)
        b.add(R_ACC, R_ACC, R_T0)
    _ballast(b, work)
    b.addi(reg, reg, region_bytes)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def init_pointer_chain(mem, rng, base, nodes, node_bytes=64, spread=1):
    """Build a cyclic randomly-ordered linked list in *mem*.

    Node i sits at ``base + i*node_bytes*spread``; traversal order is a
    random permutation; word 0 is the next pointer, word 8 a payload.
    ``spread > 1`` leaves gaps between node slots, so the pool has the
    low spatial density of real allocator-placed nodes (a dense pool
    would hand region-based prefetchers the whole chain for free).
    Returns the address of the first node in traversal order.
    """
    order = list(range(nodes))
    rng.shuffle(order)
    step = node_bytes * spread
    for position, node in enumerate(order):
        addr = base + node * step
        succ = order[(position + 1) % nodes]
        mem[addr] = base + succ * step
        mem[addr + WORD] = rng.randrange(1 << 16)
    return base + order[0] * step


def emit_pointer_chase(b, head, hops, payload=True, work=0):
    """Linked-list traversal (mcf/astar style): serially dependent loads
    no light-weight prefetcher can cover."""
    loop = b.unique("chase")
    b.li(R_P, head)
    b.li(R_C0, hops)
    b.label(loop)
    if payload:
        b.load(R_T0, WORD, R_P)
        b.add(R_ACC, R_ACC, R_T0)
    b.load(R_P, 0, R_P)
    _ballast(b, work)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def init_index_array(mem, rng, idx_base, elems, data_words):
    """Random gather indices in ``[0, data_words)``."""
    for i in range(elems):
        mem[idx_base + i * WORD] = rng.randrange(data_words)


def emit_gather(b, idx_base, data_base, elems, work=0):
    """Indexed gather (soplex/sphinx sparse style): a prefetchable index
    stream driving data accesses whose bases are computed in-block."""
    loop = b.unique("gather")
    b.li(R_B0, idx_base)
    b.li(R_B1, data_base)
    b.li(R_C0, elems)
    b.label(loop)
    b.load(R_T0, 0, R_B0)      # index (sequential, prefetchable)
    b.slli(R_T0, R_T0, 3)
    b.add(R_P, R_B1, R_T0)
    b.load(R_T1, 0, R_P)       # gathered data (irregular)
    b.add(R_ACC, R_ACC, R_T1)
    _ballast(b, work)
    b.addi(R_B0, R_B0, WORD)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def init_predicates(mem, rng, base, elems, bias):
    """0/1 predicate array: 1 with probability *bias* (biased random)."""
    for i in range(elems):
        mem[base + i * WORD] = 1 if rng.random() < bias else 0


def emit_branchy(b, pred_base, elems, walk_base, step_taken, step_not,
                 work=0, pos_reg=None, size=None, prologue=None):
    """Control-flow-dependent strides -- the paper's Fig. 2 structure.

    A data-dependent branch chooses how far the walk pointer advances
    before a shared load reads through it.  The load's address stream is
    irregular to a per-PC stride table and sparse to SMS, but each
    (branch, direction) pair gives B-Fetch's MHT a *stable* offset from
    the register value at the branch.
    """
    if pos_reg is not None:
        walk = _walk_reg(b, walk_base, pos_reg, size, prologue)
    else:
        walk = R_P
        b.li(walk, walk_base)
    loop = b.unique("branchy")
    taken = b.unique("branchy_t")
    join = b.unique("branchy_j")
    b.li(R_B0, pred_base)
    b.li(R_C0, elems)
    b.label(loop)
    b.load(R_V, 0, R_B0)
    b.bnez(R_V, taken)
    b.addi(walk, walk, step_not)
    b.br(join)
    b.label(taken)
    b.addi(walk, walk, step_taken)
    b.label(join)
    b.load(R_T0, 0, walk)
    b.add(R_ACC, R_ACC, R_T0)
    _ballast(b, work)
    b.addi(R_B0, R_B0, WORD)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def emit_switch(b, case_table, case_count, cases=4, iters=256, work=0,
                case_body=None):
    """Jump-table dispatch (switch statement / interpreter style).

    Reads a case index from memory, looks up a jump-table of code
    addresses and dispatches through ``JR`` -- the indirect-branch path
    that motivates including the *target address* in the BrTC/MHT hash
    (Section IV-B1).  ``case_body(builder, case_index)`` may emit custom
    per-case code; the default gives each case a distinct strided load.

    Memory layout expected (see :func:`init_switch_tables`): an index
    array at ``case_table`` holding values in ``[0, cases)``; the jump
    table itself is patched in at build time by the caller via the
    returned fix-up list, since case addresses are only known after the
    program is assembled.

    Returns a list of ``(table_slot_addr, case_label)`` fix-ups: after
    ``builder.build()``, write ``program.pc_of(labels[case_label])`` into
    each slot of the memory image.
    """
    dispatch = b.unique("switch")
    done = b.unique("switch_done")
    case_labels = [b.unique("case%d" % i) for i in range(cases)]
    table_base = case_table + 0x10000  # jump table lives past the indices
    b.li(R_B0, case_table)
    b.li(R_B1, table_base)
    b.li(R_C0, iters)
    b.label(dispatch)
    b.load(R_T0, 0, R_B0)          # case index
    b.slli(R_T0, R_T0, 3)
    b.add(R_P, R_B1, R_T0)
    b.load(R_T1, 0, R_P)           # code address from the jump table
    b.jr(R_T1)
    for case_index, label in enumerate(case_labels):
        b.label(label)
        if case_body is not None:
            case_body(b, case_index)
        else:
            reg = (R_B2, R_B3, R_Q, R_T3)[case_index % 4]
            b.load(R_T2, case_index * 8, R_B1)
            b.add(R_ACC, R_ACC, R_T2)
        b.br(done)
    b.label(done)
    _ballast(b, work)
    b.addi(R_B0, R_B0, WORD)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, dispatch)
    return [(table_base + i * WORD, label)
            for i, label in enumerate(case_labels)]


def init_switch_tables(mem, rng, case_table, iters, cases):
    """Random case indices for :func:`emit_switch`."""
    for i in range(iters):
        mem[case_table + i * WORD] = rng.randrange(cases)


def patch_switch_fixups(mem, program, fixups):
    """Resolve jump-table fix-ups once the program PCs are known."""
    for slot_addr, label in fixups:
        mem[slot_addr] = program.pc_of(program.labels[label])


def emit_bigcode(b, iters, blocks=256, body_instrs=80):
    """Instruction-footprint-heavy phase (B-Fetch-I's target).

    Emits *blocks* large straight-line code blocks executed in sequence
    each lap, separated by never-taken conditional branches (``bnez r31``
    reads the zero register), so the control flow is perfectly
    predictable while the code footprint --
    ``blocks * (body_instrs + 1) * 4`` bytes -- can be sized beyond the
    64KB L1I to create instruction-cache pressure.  Every block also
    performs one load off ``R_B1``.
    """
    loop = b.unique("bigcode")
    landing = b.unique("bigcode_x")
    b.li(R_C0, iters)
    b.label(loop)
    for block_index in range(blocks):
        b.li(R_T0, block_index + 1)
        for position in range(body_instrs - 4):
            if position % 3 == 0:
                b.add(R_T0, R_T0, R_W2)
            elif position % 3 == 1:
                b.xor(R_T1, R_T1, R_T0)
            else:
                b.srli(R_T1, R_T1, 1)
        b.load(R_T2, block_index * 8, R_B1)
        b.add(R_ACC, R_ACC, R_T2)
        # never-taken block separator: a predictable BB boundary
        b.bnez(31, landing)
    b.label(landing)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def emit_callweb(b, rng, funcs=256, body_instrs=40):
    """Deep-call-graph phase (server-style instruction footprint).

    Emits *funcs* function bodies behind a shuffled single-call-site
    call web: the call region visits every function once per lap in a
    seeded random order (``br f`` ... return label) and each body ends
    with a direct branch back to its unique call site, so the web needs
    no indirect branches yet hops across a code footprint of roughly
    ``funcs * (body_instrs + 2) * 4`` bytes in non-sequential order --
    the decoupled front end's target behaviour.  Each body performs one
    load off ``R_B1`` (callers set the base) and carries one never-taken
    conditional branch mid-body: shadow-branch content the predecoder
    can expose before the block's entry branch ever executes.
    """
    tag = b.unique("cw")
    done = tag + "_done"
    order = list(range(funcs))
    rng.shuffle(order)
    for index in order:
        b.br("%s_f%d" % (tag, index))
        b.label("%s_r%d" % (tag, index))
    b.br(done)
    body = max(body_instrs - 4, 3)
    half = body // 2
    for index in range(funcs):
        b.label("%s_f%d" % (tag, index))
        b.li(R_T0, index + 1)
        for position in range(body):
            if position == half:
                b.bnez(31, done)  # never taken: shadow-branch content
            elif position % 3 == 0:
                b.add(R_T0, R_T0, R_W2)
            elif position % 3 == 1:
                b.xor(R_T1, R_T1, R_T0)
            else:
                b.srli(R_T1, R_T1, 1)
        b.load(R_T2, (index % 512) * 8, R_B1)
        b.add(R_ACC, R_ACC, R_T2)
        b.br("%s_r%d" % (tag, index))
    b.label(done)


def emit_compute(b, iters, chain=6):
    """ALU-dominated loop with a private stack slot (gamess/calculix
    style): effectively L1-resident, the paper's no-gain class."""
    loop = b.unique("compute")
    b.li(R_B0, 0x100)          # tiny stack-like scratch region
    b.li(R_C0, iters)
    b.li(R_T0, 3)
    b.li(R_T1, 5)
    b.label(loop)
    for _ in range(chain):
        b.add(R_T0, R_T0, R_T1)
        b.xor(R_T1, R_T1, R_T0)
        b.srli(R_T1, R_T1, 1)
    b.mul(R_T2, R_T0, R_T1)
    b.store(R_T2, 0, R_B0)
    b.load(R_T3, 0, R_B0)
    b.add(R_ACC, R_ACC, R_T3)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)


def emit_matrix(b, base, rows, cols, elem_bytes=WORD, row_pad=0, work=0):
    """Nested row/column walk (h264ref/hmmer inner loops).

    The inner-loop back-branch revisits the same basic block, exercising
    B-Fetch's runtime loop detection (LoopCnt x LoopDelta prefetching).
    """
    outer = b.unique("mat_o")
    inner = b.unique("mat_i")
    row_stride = cols * elem_bytes + row_pad
    b.li(R_B0, base)
    b.li(R_C1, rows)
    b.label(outer)
    b.mov(R_P, R_B0)
    b.li(R_C0, cols)
    b.label(inner)
    b.load(R_T0, 0, R_P)
    b.add(R_ACC, R_ACC, R_T0)
    _ballast(b, work)
    b.addi(R_P, R_P, elem_bytes)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, inner)
    b.addi(R_B0, R_B0, row_stride)
    b.subi(R_C1, R_C1, 1)
    b.bnez(R_C1, outer)


def emit_hot(b, base, size_bytes, iters, work=0):
    """LCG-scrambled accesses inside a small resident region (sjeng
    hash-table style): L1/L2-resident, unpredictable addresses."""
    if size_bytes & (size_bytes - 1):
        raise ValueError("size must be a power of two")
    loop = b.unique("hot")
    b.li(R_B0, base)
    b.li(R_C0, iters)
    b.label(loop)
    # LCG step: seed = seed * 1103515245 + 12345
    b.li(R_T1, 1103515245)
    b.mul(R_SEED, R_SEED, R_T1)
    b.addi(R_SEED, R_SEED, 12345)
    b.srli(R_T0, R_SEED, 8)
    # size is a power of two, so (size - 8) is simultaneously the range
    # mask and the 8-byte alignment mask
    b.andi(R_T0, R_T0, size_bytes - WORD)
    b.add(R_P, R_B0, R_T0)
    b.load(R_T2, 0, R_P)
    b.add(R_ACC, R_ACC, R_T2)
    b.store(R_ACC, 0, R_P)
    _ballast(b, work)
    b.subi(R_C0, R_C0, 1)
    b.bnez(R_C0, loop)
