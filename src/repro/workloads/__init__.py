"""Synthetic workloads standing in for the paper's SPEC CPU2006 set.

Real SPEC binaries are unavailable here, so each of the 18 benchmarks the
paper evaluates is modelled as a parameterised mixture of memory-access
*kernels* (:mod:`repro.workloads.patterns`) with genuine register dataflow
and control flow -- the properties B-Fetch's mechanism actually depends
on.  Profiles (:mod:`repro.workloads.spec`) are tuned so each benchmark
falls in the same qualitative class as its namesake (L1-resident compute,
streaming, region/struct-spatial, pointer-chasing, branchy-irregular).

:mod:`repro.workloads.mixes` implements the FOA (frequency-of-access)
contention model of Chandra et al. used by the paper to pick its 29
highest-contention multiprogrammed mixes.
"""

from repro.workloads.builder import ProgramBuilder
from repro.workloads.workload import Workload
from repro.workloads.spec import BENCHMARKS, PREFETCH_SENSITIVE, build_workload
from repro.workloads.mixes import select_mixes
from repro.workloads.synth import synthesize

__all__ = [
    "ProgramBuilder",
    "Workload",
    "BENCHMARKS",
    "PREFETCH_SENSITIVE",
    "build_workload",
    "select_mixes",
    "synthesize",
]
