"""Workload: a program plus its initial memory image and metadata."""


class Workload:
    """One runnable benchmark.

    :param name: benchmark name ("mcf", "libquantum", ...).
    :param program: the :class:`~repro.isa.Program`.
    :param memory: initial memory image (byte address -> 64-bit word),
        copied by each :class:`~repro.sim.System` so runs are isolated.
    :param profile: the :class:`~repro.workloads.spec.Profile` that
        produced it (carries the FOA estimate and class tags), optional.
    """

    def __init__(self, name, program, memory=None, profile=None):
        self.name = name
        self.program = program
        self.memory = memory if memory is not None else {}
        self.profile = profile

    def __repr__(self):
        return "Workload(%s, %d instrs, %d memory words)" % (
            self.name, len(self.program), len(self.memory)
        )
