"""Multiprogrammed mix selection via the FOA contention model.

The paper selects its 29 2-app and 4-app mixes using the frequency-of-
access (FOA) inter-thread contention model of Chandra et al. (HPCA 2005):
threads that access the shared cache most often are predicted to contend
most, so mixes are ranked by their combined shared-cache access
frequency and the highest-contention ones are kept.

``select_mixes`` is deterministic; a per-benchmark appearance cap keeps
the mix set diverse instead of 29 copies of the two hungriest apps.
"""

from itertools import combinations


def foa_from_result(result):
    """FOA of one solo run: shared-cache (LLC) accesses per cycle."""
    cycles = result.data["cycles"]
    return result.data["llc"]["accesses"] / cycles if cycles else 0.0


def select_mixes(foa, size, count=29, max_appearances=None):
    """Pick *count* mixes of *size* benchmarks with the highest combined FOA.

    :param foa: mapping benchmark name -> FOA value.
    :param size: apps per mix (2 or 4 in the paper).
    :param count: number of mixes (29 in the paper).
    :param max_appearances: cap on how often one benchmark may appear;
        defaults to a cap that keeps the set diverse.
    :returns: list of tuples of benchmark names, ordered by descending
        combined FOA.
    """
    names = sorted(foa)
    if size < 1 or size > len(names):
        raise ValueError("mix size %d out of range" % size)
    if max_appearances is None:
        max_appearances = max(2, (count * size * 2) // (3 * len(names)) + 2)
    candidates = sorted(
        combinations(names, size),
        key=lambda mix: (-sum(foa[n] for n in mix), mix),
    )
    chosen = []
    uses = dict.fromkeys(names, 0)
    for mix in candidates:
        if len(chosen) >= count:
            break
        if any(uses[n] >= max_appearances for n in mix):
            continue
        chosen.append(mix)
        for n in mix:
            uses[n] += 1
    # if the cap was too tight to reach `count`, relax it pass by pass
    while len(chosen) < count:
        progressed = False
        for mix in candidates:
            if len(chosen) >= count:
                break
            if mix in chosen:
                continue
            chosen.append(mix)
            progressed = True
        if not progressed:
            break
    return chosen[:count]
