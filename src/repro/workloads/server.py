"""Server-class code-footprint-heavy profiles (front-end evaluation).

The 18 SPEC stand-ins stress the *data* side; their code footprints fit
the 64KB L1I after the first lap, so instruction prefetching has nothing
to do.  These three profiles model the server-style behaviour the FDIP
and shadow-branch literature targets -- deep call graphs and
straight-line code working sets past the L1I -- built from the
:func:`~repro.workloads.patterns.emit_callweb` call web and oversized
:func:`~repro.workloads.patterns.emit_bigcode` regions:

* ``nginx``     -- one large shuffled call web (~75KB of bodies): every
  lap hops through 384 functions in non-sequential order;
* ``postgres``  -- a medium call web plus a bigcode executor segment and
  an index-gather phase (catalog lookups): mixed I- and D-side misses;
* ``verilator`` -- generated straight-line evaluation code (~113KB of
  bigcode) with a compute tail: maximal sequential I-streaming.

All three are ``klass="server"`` and deterministic like the SPEC
profiles; registration lives in :data:`repro.workloads.spec.PROFILES`.
"""

from repro.workloads import patterns as pat

_MB = 1024 * 1024


def nginx(b, mem, rng, pro):
    data_base, = _nbases(1)
    b.li(pat.R_B1, data_base)
    pat.emit_callweb(b, rng, funcs=384, body_instrs=44)
    pat.emit_compute(b, iters=100)


def postgres(b, mem, rng, pro):
    data_base, idx_base, gather_base = _nbases(3)
    pat.init_index_array(mem, rng, idx_base, 800, data_words=128 * 1024)
    b.li(pat.R_B1, data_base)
    pat.emit_callweb(b, rng, funcs=256, body_instrs=40)
    pat.emit_bigcode(b, iters=1, blocks=128, body_instrs=61)
    pat.emit_gather(b, idx_base, gather_base, elems=800, work=2)


def verilator(b, mem, rng, pro):
    data_base, = _nbases(1)
    b.li(pat.R_B1, data_base)
    pat.emit_bigcode(b, iters=1, blocks=384, body_instrs=72)
    pat.emit_compute(b, iters=150)


def _nbases(count):
    """Region bases offset from the SPEC profiles' address range."""
    region = 16 * _MB
    return [region * (count + 40 + i) + i * 8256 for i in range(count)]
