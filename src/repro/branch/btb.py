"""Branch target buffer.

A direct-mapped PC -> target cache.  The main pipeline uses it to predict
indirect (``JR``) targets (last-target prediction); direct-branch targets in
the trace-driven model come from the instruction itself, as they would from
decode.
"""


class BranchTargetBuffer:
    """Direct-mapped BTB with partial tags.

    :param entries: number of slots (power of two).
    :param tag_bits: partial tag width.
    """

    def __init__(self, entries=2048, tag_bits=16):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.tag_bits = tag_bits
        self._mask = entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.tags = [None] * entries
        self.targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def _slot(self, pc):
        index = (pc >> 2) & self._mask
        tag = (pc >> 2) & self._tag_mask
        return index, tag

    def lookup(self, pc):
        """Return the predicted target for *pc*, or None on a BTB miss."""
        index, tag = self._slot(pc)
        if self.tags[index] == tag:
            self.hits += 1
            return self.targets[index]
        self.misses += 1
        return None

    def peek(self, pc):
        """Like :meth:`lookup` but without touching the hit/miss
        counters -- the front-end BPU walker probes every instruction
        slot of a fetch block, which would otherwise drown the demand
        hit rate."""
        index, tag = self._slot(pc)
        if self.tags[index] == tag:
            return self.targets[index]
        return None

    def update(self, pc, target):
        """Install or refresh the target for the branch at *pc*."""
        index, tag = self._slot(pc)
        self.tags[index] = tag
        self.targets[index] = target

    def snapshot(self):
        """Tags, targets and hit counters as a JSON-safe structure."""
        return {
            "tags": list(self.tags),
            "targets": list(self.targets),
            "hits": self.hits,
            "misses": self.misses,
        }

    def restore(self, state):
        """Restore BTB state from :meth:`snapshot` output."""
        self.tags = list(state["tags"])
        self.targets = list(state["targets"])
        self.hits = state["hits"]
        self.misses = state["misses"]

    def storage_bits(self):
        return self.entries * (self.tag_bits + 32)
