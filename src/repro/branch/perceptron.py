"""Perceptron branch predictor (Jimenez & Lin, HPCA 2001).

The paper's future work proposes evaluating B-Fetch under
"state-of-the-art branch predictors"; this is the classic neural
predictor from the same group.  Each branch PC indexes a vector of
signed weights; the prediction is the sign of the dot product of the
weights with the global history (+bias), and training nudges weights
whenever the prediction was wrong or the magnitude fell below the
threshold.

Exposes the same interface as the tournament predictor (``predict`` with
an optional explicit history, ``update``, ``history``), so it drops into
:class:`~repro.sim.SystemConfig` via ``branch_predictor="perceptron"``.
"""

_THETA_FACTOR = 1.93  # Jimenez's empirically optimal threshold slope


class PerceptronPredictor:
    """Global-history perceptron predictor.

    :param entries: number of weight vectors (power of two).
    :param history_bits: global history length == weights per vector.
    :param weight_bits: signed weight width (8 in the original).
    """

    name = "perceptron"

    def __init__(self, entries=512, history_bits=24, weight_bits=8):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.weight_limit = (1 << (weight_bits - 1)) - 1
        self.weight_bits = weight_bits
        self.threshold = int(_THETA_FACTOR * history_bits + 14)
        # weights[i] = [bias, w1..wn]
        self.weights = [[0] * (history_bits + 1) for _ in range(entries)]
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self.history = 0

    def _output(self, pc, history):
        weights = self.weights[(pc >> 2) & self._mask]
        total = weights[0]
        for position in range(1, self.history_bits + 1):
            if (history >> (position - 1)) & 1:
                total += weights[position]
            else:
                total -= weights[position]
        return total

    def predict(self, pc, history=None):
        """Predict the branch at *pc* (side-effect free)."""
        if history is None:
            history = self.history
        return self._output(pc, history) >= 0

    def update(self, pc, taken):
        """Perceptron learning rule + global history shift."""
        history = self.history
        output = self._output(pc, history)
        predicted = output >= 0
        if predicted != taken or abs(output) <= self.threshold:
            weights = self.weights[(pc >> 2) & self._mask]
            step = 1 if taken else -1
            limit = self.weight_limit
            new_bias = weights[0] + step
            if -limit <= new_bias <= limit:
                weights[0] = new_bias
            for position in range(1, self.history_bits + 1):
                agree = ((history >> (position - 1)) & 1) == (1 if taken else 0)
                delta = 1 if agree else -1
                value = weights[position] + delta
                if -limit <= value <= limit:
                    weights[position] = value
        self.history = ((history << 1) | (1 if taken else 0)) & self._hist_mask

    def snapshot(self):
        """Weight vectors and live history as a JSON-safe structure."""
        return {
            "weights": [list(vector) for vector in self.weights],
            "history": self.history,
        }

    def restore(self, state):
        """Restore predictor state from :meth:`snapshot` output."""
        self.weights = [list(vector) for vector in state["weights"]]
        self.history = state["history"]

    def storage_bits(self):
        return (
            self.entries * (self.history_bits + 1) * self.weight_bits
            + self.history_bits
        )
