"""Two-level local-history direction predictor (Yeh/Patt, 21264-style)."""


class LocalPredictor:
    """Per-branch history table feeding a pattern table of 3-bit counters.

    :param history_entries: number of per-branch history registers.
    :param history_bits: length of each local history.
    :param counter_bits: pattern-table counter width (3 in the 21264).
    """

    name = "local"

    def __init__(self, history_entries=1024, history_bits=10, counter_bits=3):
        if history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a power of two")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.histories = [0] * history_entries
        self.pattern_entries = 1 << history_bits
        self.counters = [self.threshold] * self.pattern_entries
        self._hmask = history_entries - 1
        self._pmask = self.pattern_entries - 1

    def predict(self, pc, history=None):
        """Predict from the branch's local history (*history* is ignored;
        local prediction does not consume the global register)."""
        local = self.histories[(pc >> 2) & self._hmask]
        return self.counters[local & self._pmask] >= self.threshold

    def update(self, pc, taken):
        """Train the pattern counter and shift the branch's local history."""
        hindex = (pc >> 2) & self._hmask
        local = self.histories[hindex]
        pindex = local & self._pmask
        count = self.counters[pindex]
        if taken:
            if count < self.max_count:
                self.counters[pindex] = count + 1
        elif count > 0:
            self.counters[pindex] = count - 1
        self.histories[hindex] = ((local << 1) | (1 if taken else 0)) & self._pmask

    def snapshot(self):
        """Histories and pattern counters as a JSON-safe structure."""
        return {
            "histories": list(self.histories),
            "counters": list(self.counters),
        }

    def restore(self, state):
        """Restore predictor state from :meth:`snapshot` output."""
        self.histories = list(state["histories"])
        self.counters = list(state["counters"])

    def storage_bits(self):
        return (
            self.history_entries * self.history_bits
            + self.pattern_entries * self.counter_bits
        )
