"""Per-branch confidence estimators.

B-Fetch throttles its lookahead with a *path* confidence built from
per-branch confidence estimates.  The paper (Section IV-B1) uses the
composite estimator of Jimenez [12], combining three component estimators:

* **JRS** (Jacobsen/Rotenberg/Smith): resetting counters indexed by
  ``PC xor history`` -- incremented on a correct prediction, cleared on a
  mispredict, so the counter value is the current correct-streak length for
  that (branch, history) context.
* **Up-down**: saturating counters indexed by PC that move up on correct
  and down on incorrect predictions.
* **Self counter**: tracks the branch's own outcome streak -- a strongly
  biased branch is inherently high-confidence.

Each component maps its counter to an estimated probability that the next
prediction is correct via a small calibration table; the composite averages
the three.  The absolute calibration only needs to be *monotonic and
roughly consistent* with the observed ~2.76% mispredict rate -- it yields
the paper's reported ~8-basic-block mean lookahead at the 0.75 path
threshold (checked in the test suite).
"""


def _calibration(levels, floor, ceiling):
    """Monotonic counter->probability table of *levels* entries."""
    if levels == 1:
        return [ceiling]
    step = (ceiling - floor) / float(levels - 1)
    return [floor + step * i for i in range(levels)]


class JRSEstimator:
    """Resetting-counter estimator indexed by ``PC xor global history``."""

    def __init__(self, entries=1024, counter_bits=4, history_bits=10):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.table = [0] * entries
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self._prob = _calibration(self.max_count + 1, 0.70, 0.97)

    def _index(self, pc, history):
        return ((pc >> 2) ^ (history & self._hist_mask)) & self._mask

    def probability(self, pc, history=0):
        """Estimated P(next prediction correct) for this (branch, history)."""
        return self._prob[self.table[self._index(pc, history)]]

    def update(self, pc, history, correct):
        index = self._index(pc, history)
        if correct:
            if self.table[index] < self.max_count:
                self.table[index] += 1
        else:
            self.table[index] = 0

    def snapshot(self):
        return {"table": list(self.table)}

    def restore(self, state):
        self.table = list(state["table"])

    def storage_bits(self):
        return self.entries * self.counter_bits


class UpDownEstimator:
    """Saturating up/down counter estimator indexed by PC."""

    def __init__(self, entries=1024, counter_bits=4):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.table = [self.max_count // 2] * entries
        self._mask = entries - 1
        self._prob = _calibration(self.max_count + 1, 0.70, 0.97)

    def probability(self, pc, history=0):
        return self._prob[self.table[(pc >> 2) & self._mask]]

    def update(self, pc, history, correct):
        index = (pc >> 2) & self._mask
        if correct:
            if self.table[index] < self.max_count:
                self.table[index] += 1
        elif self.table[index] > 0:
            self.table[index] -= 1

    def snapshot(self):
        return {"table": list(self.table)}

    def restore(self, state):
        self.table = list(state["table"])

    def storage_bits(self):
        return self.entries * self.counter_bits


class SelfCounterEstimator:
    """Outcome-streak estimator: long same-direction runs imply confidence."""

    def __init__(self, entries=1024, counter_bits=4):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.streaks = [0] * entries
        self.last_dir = [True] * entries
        self._mask = entries - 1
        self._prob = _calibration(self.max_count + 1, 0.70, 0.97)

    def probability(self, pc, history=0):
        return self._prob[self.streaks[(pc >> 2) & self._mask]]

    def update(self, pc, history, correct, taken=None):
        """Track outcome streaks; *taken* defaults to treating *correct*
        as the streak signal when the direction is not supplied."""
        index = (pc >> 2) & self._mask
        if taken is None:
            taken = correct
        if self.last_dir[index] == taken:
            if self.streaks[index] < self.max_count:
                self.streaks[index] += 1
        else:
            self.streaks[index] = 0
            self.last_dir[index] = taken

    def snapshot(self):
        return {
            "streaks": list(self.streaks),
            "last_dir": list(self.last_dir),
        }

    def restore(self, state):
        self.streaks = list(state["streaks"])
        self.last_dir = [bool(value) for value in state["last_dir"]]

    def storage_bits(self):
        return self.entries * (self.counter_bits + 1)


class CompositeConfidenceEstimator:
    """Jimenez-style composite of JRS, up-down and self-counter estimators.

    :param entries: table size for each component.  The paper's Table I
        budgets 2KB for the whole path-confidence estimator; the default
        sizes fit that budget (see :meth:`storage_bits`).
    """

    def __init__(self, entries=1024, counter_bits=4, history_bits=10):
        # split the budget: JRS gets half the entries of the others since it
        # also burns index entropy on the history hash
        self.jrs = JRSEstimator(entries, counter_bits, history_bits)
        self.updown = UpDownEstimator(entries // 2, counter_bits)
        self.selfc = SelfCounterEstimator(entries // 2, counter_bits)

    def probability(self, pc, history=0):
        """Composite P(prediction correct) -- the mean of the components."""
        return (
            self.jrs.probability(pc, history)
            + self.updown.probability(pc, history)
            + self.selfc.probability(pc, history)
        ) / 3.0

    def update(self, pc, history, correct, taken=None):
        """Train every component with the resolved branch."""
        self.jrs.update(pc, history, correct)
        self.updown.update(pc, history, correct)
        self.selfc.update(pc, history, correct, taken)

    def snapshot(self):
        """Component estimator tables as a JSON-safe structure."""
        return {
            "jrs": self.jrs.snapshot(),
            "updown": self.updown.snapshot(),
            "selfc": self.selfc.snapshot(),
        }

    def restore(self, state):
        """Restore estimator state from :meth:`snapshot` output."""
        self.jrs.restore(state["jrs"])
        self.updown.restore(state["updown"])
        self.selfc.restore(state["selfc"])

    def storage_bits(self):
        return (
            self.jrs.storage_bits()
            + self.updown.storage_bits()
            + self.selfc.storage_bits()
        )
