"""Gshare global-history direction predictor (McFarling)."""


class GsharePredictor:
    """2-bit counters indexed by ``PC xor global_history``.

    The global history register is owned by the caller-facing ``update``;
    ``predict`` takes an explicit *history* so B-Fetch's lookahead can probe
    the predictor with a *speculative* history without disturbing state.

    :param entries: counter table size (power of two).
    :param history_bits: global history length.
    """

    name = "gshare"

    def __init__(self, entries=4096, history_bits=12, counter_bits=2):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.table = [self.threshold] * entries
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc, history):
        return ((pc >> 2) ^ history) & self._mask

    def predict(self, pc, history=None):
        """Predict using *history* (defaults to the live history register)."""
        if history is None:
            history = self.history
        return self.table[self._index(pc, history)] >= self.threshold

    def update(self, pc, taken):
        """Train the indexed counter and shift the live global history."""
        index = self._index(pc, self.history)
        count = self.table[index]
        if taken:
            if count < self.max_count:
                self.table[index] = count + 1
        elif count > 0:
            self.table[index] = count - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._hist_mask

    def snapshot(self):
        """Counter table and live history as a JSON-safe structure."""
        return {"table": list(self.table), "history": self.history}

    def restore(self, state):
        """Restore predictor state from :meth:`snapshot` output."""
        self.table = list(state["table"])
        self.history = state["history"]

    def storage_bits(self):
        return self.entries * self.counter_bits + self.history_bits
