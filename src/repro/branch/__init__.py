"""Branch prediction substrate.

Provides the direction predictors (bimodal, gshare, local, tournament), a
branch target buffer, the per-branch confidence estimators (JRS, up-down,
self-counter and Jimenez's composite), and the Malik-style multiplicative
path-confidence tracker used by B-Fetch's lookahead throttle.
"""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.local import LocalPredictor
from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tournament import TournamentConfig, TournamentPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.confidence import (
    CompositeConfidenceEstimator,
    JRSEstimator,
    SelfCounterEstimator,
    UpDownEstimator,
)
from repro.branch.path_confidence import PathConfidence

__all__ = [
    "BimodalPredictor",
    "GsharePredictor",
    "LocalPredictor",
    "TournamentPredictor",
    "TournamentConfig",
    "PerceptronPredictor",
    "BranchTargetBuffer",
    "JRSEstimator",
    "UpDownEstimator",
    "SelfCounterEstimator",
    "CompositeConfidenceEstimator",
    "PathConfidence",
]
