"""Tournament (hybrid) predictor: local + gshare with a global chooser.

This is the "6.55KB tournament predictor" of the paper's Table II.  A
``scale`` knob multiplies every table size, which is exactly how the paper
emulates "a more accurate branch predictor" in the Fig. 13 sensitivity
sweep (0.5x / default / 2x / 4x).
"""

from repro.branch.gshare import GsharePredictor
from repro.branch.local import LocalPredictor


class TournamentConfig:
    """Size parameters for :class:`TournamentPredictor`.

    Defaults (scale=1) give a 21264-flavoured predictor of roughly the
    paper's 6.55KB budget.
    """

    def __init__(
        self,
        scale=1.0,
        local_history_entries=1024,
        local_history_bits=10,
        global_entries=4096,
        global_history_bits=12,
        chooser_entries=4096,
    ):
        def scaled(value):
            result = max(16, int(value * scale))
            # round down to a power of two
            return 1 << (result.bit_length() - 1)

        self.scale = scale
        self.local_history_entries = scaled(local_history_entries)
        self.local_history_bits = local_history_bits
        self.global_entries = scaled(global_entries)
        self.global_history_bits = min(
            global_history_bits + max(0, int(scale).bit_length() - 1),
            (self.global_entries - 1).bit_length(),
        )
        self.chooser_entries = scaled(chooser_entries)


class TournamentPredictor:
    """Hybrid local/gshare predictor with a 2-bit chooser per history index.

    The chooser is trained only when the components disagree; the global
    history register lives in the embedded gshare component and is shared
    for chooser indexing, as in the 21264.
    """

    name = "tournament"

    def __init__(self, config=None):
        self.config = config or TournamentConfig()
        cfg = self.config
        self.local = LocalPredictor(cfg.local_history_entries, cfg.local_history_bits)
        self.gshare = GsharePredictor(cfg.global_entries, cfg.global_history_bits)
        self.chooser = [2] * cfg.chooser_entries  # 2 = weakly prefer global
        self._cmask = cfg.chooser_entries - 1

    @property
    def history(self):
        """Live global history register (used to seed speculative lookups)."""
        return self.gshare.history

    def predict(self, pc, history=None):
        """Predict the branch at *pc*.

        With ``history=None`` the live global history is used; passing an
        explicit *history* performs a side-effect-free speculative lookup
        (B-Fetch lookahead threading its own history down the predicted
        path).
        """
        if history is None:
            history = self.gshare.history
        local_pred = self.local.predict(pc)
        global_pred = self.gshare.predict(pc, history)
        use_global = self.chooser[history & self._cmask] >= 2
        return global_pred if use_global else local_pred

    def update(self, pc, taken):
        """Train all components with the resolved outcome."""
        history = self.gshare.history
        local_pred = self.local.predict(pc)
        global_pred = self.gshare.predict(pc, history)
        if local_pred != global_pred:
            cindex = history & self._cmask
            count = self.chooser[cindex]
            if global_pred == taken:
                if count < 3:
                    self.chooser[cindex] = count + 1
            elif count > 0:
                self.chooser[cindex] = count - 1
        self.local.update(pc, taken)
        self.gshare.update(pc, taken)  # also shifts the global history

    def snapshot(self):
        """Component predictors and chooser as a JSON-safe structure."""
        return {
            "local": self.local.snapshot(),
            "gshare": self.gshare.snapshot(),
            "chooser": list(self.chooser),
        }

    def restore(self, state):
        """Restore predictor state from :meth:`snapshot` output."""
        self.local.restore(state["local"])
        self.gshare.restore(state["gshare"])
        self.chooser = list(state["chooser"])

    def storage_bits(self):
        return (
            self.local.storage_bits()
            + self.gshare.storage_bits()
            + len(self.chooser) * 2
        )
