"""Bimodal (per-PC 2-bit saturating counter) direction predictor."""


class BimodalPredictor:
    """The classic Smith predictor: a table of 2-bit counters indexed by PC.

    :param entries: number of counters (power of two).
    :param counter_bits: saturating counter width (default 2).
    """

    name = "bimodal"

    def __init__(self, entries=4096, counter_bits=2):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.max_count = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self.table = [self.threshold] * entries
        self._mask = entries - 1
        self.counter_bits = counter_bits

    def _index(self, pc):
        return (pc >> 2) & self._mask

    def predict(self, pc, history=0):
        """Predict taken/not-taken for the branch at *pc*.

        *history* is accepted (and ignored) so all predictors share one
        speculative-lookup signature.
        """
        return self.table[self._index(pc)] >= self.threshold

    def update(self, pc, taken):
        """Train with the resolved outcome."""
        index = self._index(pc)
        count = self.table[index]
        if taken:
            if count < self.max_count:
                self.table[index] = count + 1
        elif count > 0:
            self.table[index] = count - 1

    def storage_bits(self):
        """Total predictor state in bits (for Table-I-style accounting)."""
        return self.entries * self.counter_bits
