"""Path confidence tracking (Malik et al., PaCo-style).

The probability that an entire speculative path is correct is the product
of the per-branch correctness probabilities along it.  B-Fetch terminates
its lookahead when this product drops below a threshold (0.75 in the
paper's Table II).
"""


class PathConfidence:
    """Multiplicative path-confidence accumulator.

    Use one instance per lookahead walk::

        path = PathConfidence(threshold=0.75)
        while path.confident:
            ...
            path.extend(estimator.probability(branch_pc, spec_history))
    """

    __slots__ = ("threshold", "value", "depth")

    def __init__(self, threshold=0.75, initial=1.0):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.value = initial
        self.depth = 0

    @property
    def confident(self):
        """True while the accumulated path probability clears the threshold."""
        return self.value >= self.threshold

    def extend(self, branch_probability):
        """Multiply in one more predicted branch; returns the new value."""
        if not 0.0 <= branch_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.value *= branch_probability
        self.depth += 1
        return self.value

    def __repr__(self):
        return "PathConfidence(value=%.4f, depth=%d, threshold=%.2f)" % (
            self.value,
            self.depth,
            self.threshold,
        )
