"""gem5-style statistics registry.

Components register named statistics -- :class:`Counter`,
:class:`Histogram`, :class:`Ratio` -- under hierarchical dotted names
(``core.rob.full_stalls``, ``pf.bfetch.lookahead_depth``) instead of
hand-assembling ad-hoc dicts.  Two registration styles coexist:

* **first-class stats** created through :meth:`StatsRegistry.counter` /
  :meth:`~StatsRegistry.histogram` / :meth:`~StatsRegistry.ratio`, for
  code that is not on a per-instruction hot path;
* **adopted stats** (:meth:`StatsRegistry.adopt`), live *views* over an
  existing slotted counter object (:class:`~repro.memory.CacheStats`,
  :class:`~repro.memory.PrefetchStats`, ...).  The component keeps
  bumping plain ``int`` attributes -- zero hot-loop overhead -- while
  the registry reads them by name at dump time.

The registry is *passive*: building one and adopting every component
costs a few microseconds at system-assembly time and nothing per
simulated instruction, which is how the observability layer keeps
:class:`~repro.sim.RunResult` byte-identical and ``bench-perf``
within its <5% overhead budget when tracing is off.
"""

from collections import OrderedDict


class Stat(object):
    """Base class: a named value with a description and a kind tag."""

    kind = "stat"
    __slots__ = ("name", "desc")

    def __init__(self, name, desc=""):
        self.name = name
        self.desc = desc

    @property
    def value(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self):
        """Zero the stat (no-op for derived stats)."""

    def __repr__(self):
        return "%s(%s=%r)" % (type(self).__name__, self.name, self.value)


class Counter(Stat):
    """A monotonically growing event count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name, desc=""):
        super().__init__(name, desc)
        self._value = 0

    def inc(self, n=1):
        self._value += n

    @property
    def value(self):
        return self._value

    @value.setter
    def value(self, new):
        self._value = new

    def reset(self):
        self._value = 0

    def __iadd__(self, n):
        self._value += n
        return self


class Histogram(Stat):
    """Bucketed distribution of integer samples.

    Values ``>= buckets`` land in the final (overflow) bucket, matching
    the ``fetch_branch_hist`` convention of the timing core.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name, buckets, desc=""):
        super().__init__(name, desc)
        if buckets < 1:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = [0] * buckets

    def sample(self, value, count=1):
        buckets = self.buckets
        index = value if 0 <= value < len(buckets) else (
            len(buckets) - 1 if value > 0 else 0
        )
        buckets[index] += count

    @property
    def value(self):
        return list(self.buckets)

    @property
    def total(self):
        return sum(self.buckets)

    @property
    def mean(self):
        total = sum(self.buckets)
        if not total:
            return 0.0
        return sum(i * n for i, n in enumerate(self.buckets)) / total

    def reset(self):
        self.buckets = [0] * len(self.buckets)


class Ratio(Stat):
    """A derived stat: numerator / denominator, 0.0 when undefined.

    *numerator* and *denominator* are zero-argument callables evaluated
    lazily at dump time, so a Ratio never adds work to the simulation
    loop and always reflects the current counter values.
    """

    kind = "ratio"
    __slots__ = ("_num", "_den")

    def __init__(self, name, numerator, denominator, desc=""):
        super().__init__(name, desc)
        self._num = numerator
        self._den = denominator

    @property
    def value(self):
        den = self._den()
        return self._num() / den if den else 0.0


class AdoptedStat(Stat):
    """A live view over one attribute of an existing counter object."""

    kind = "counter"
    __slots__ = ("_obj", "_attr")

    def __init__(self, name, obj, attr, desc=""):
        super().__init__(name, desc)
        self._obj = obj
        self._attr = attr

    @property
    def value(self):
        value = getattr(self._obj, self._attr)
        return list(value) if isinstance(value, list) else value

    def reset(self):
        current = getattr(self._obj, self._attr)
        if isinstance(current, list):
            for index in range(len(current)):
                current[index] = 0
        elif isinstance(current, (int, float)):
            try:
                setattr(self._obj, self._attr, type(current)(0))
            except AttributeError:
                pass  # read-only property: derived, nothing to reset


class FuncStat(Stat):
    """A derived stat computed by a zero-argument callable."""

    kind = "derived"
    __slots__ = ("_fn",)

    def __init__(self, name, fn, desc=""):
        super().__init__(name, desc)
        self._fn = fn

    @property
    def value(self):
        return self._fn()


class StatsRegistry(object):
    """Hierarchical registry of named statistics.

    Names are dotted paths; :meth:`dump` returns them flat and sorted,
    :meth:`as_dict` returns the same data nested by path component.
    """

    def __init__(self):
        self._stats = OrderedDict()

    # ------------------------------------------------------------------
    # registration

    def register(self, stat):
        """Register a :class:`Stat`; duplicate names are an error."""
        if stat.name in self._stats:
            raise ValueError("stat %r is already registered" % stat.name)
        self._stats[stat.name] = stat
        return stat

    def counter(self, name, desc=""):
        return self.register(Counter(name, desc))

    def histogram(self, name, buckets, desc=""):
        return self.register(Histogram(name, buckets, desc))

    def ratio(self, name, numerator, denominator, desc=""):
        return self.register(Ratio(name, numerator, denominator, desc))

    def derived(self, name, fn, desc=""):
        return self.register(FuncStat(name, fn, desc))

    def adopt(self, prefix, obj, fields=None, descs=None):
        """Expose the counter attributes of *obj* under ``prefix.<field>``.

        *fields* defaults to the object's ``__slots__``; the component
        keeps mutating its plain attributes and the registry observes
        them live.  Returns the list of created stats.
        """
        if fields is None:
            fields = getattr(obj, "__slots__", None)
            if fields is None:
                raise ValueError(
                    "adopt() needs explicit fields for %r" % (obj,)
                )
        descs = descs or {}
        return [
            self.register(
                AdoptedStat("%s.%s" % (prefix, field), obj, field,
                            descs.get(field, ""))
            )
            for field in fields
        ]

    # ------------------------------------------------------------------
    # access

    def __contains__(self, name):
        return name in self._stats

    def __getitem__(self, name):
        return self._stats[name]

    def __iter__(self):
        return iter(self._stats.values())

    def __len__(self):
        return len(self._stats)

    def names(self):
        return list(self._stats)

    # ------------------------------------------------------------------
    # dumping

    def dump(self):
        """Flat ``OrderedDict`` of name -> current value, sorted by name."""
        return OrderedDict(
            (name, self._stats[name].value)
            for name in sorted(self._stats)
        )

    def as_dict(self):
        """Nested dict keyed by dotted-path components."""
        root = {}
        for name, value in self.dump().items():
            node = root
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return root

    def format(self, pattern=None):
        """gem5-style text dump: one ``name  value  # desc`` line each.

        :param pattern: optional substring filter on stat names.
        """
        lines = []
        for name, value in self.dump().items():
            if pattern and pattern not in name:
                continue
            stat = self._stats[name]
            if isinstance(value, float):
                rendered = "%.6f" % value
            else:
                rendered = str(value)
            line = "%-44s %16s" % (name, rendered)
            if stat.desc:
                line += "  # %s" % stat.desc
            lines.append(line)
        return "\n".join(lines)

    def reset(self):
        """Zero every resettable stat."""
        for stat in self._stats.values():
            stat.reset()
