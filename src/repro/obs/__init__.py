"""Observability layer: stats registry, event tracing, profiling.

Three independent pieces, all zero-cost when unused:

* :class:`StatsRegistry` -- gem5-style named :class:`Counter` /
  :class:`Histogram` / :class:`Ratio` statistics under hierarchical
  dotted names, with live *adoption* of the existing slotted counter
  objects so hot loops keep bumping plain ints;
* :class:`Tracer` -- buffered structured JSONL event tracing with
  per-category enable and deterministic sampling
  (``REPRO_TRACE=bfetch,cache:0.01``), flushed atomically;
* :class:`Profiler` -- opt-in wall-clock phase sections with item
  rates, feeding the perf harness and batch reports.

CLI entry points: ``python -m repro stats`` and ``python -m repro
trace`` (see :mod:`repro.cli`).
"""

from repro.obs.io import atomic_write_text
from repro.obs.profile import PhaseRecord, Profiler
from repro.obs.registry import (
    AdoptedStat,
    Counter,
    FuncStat,
    Histogram,
    Ratio,
    Stat,
    StatsRegistry,
)
from repro.obs.trace import (
    CATEGORIES,
    DEFAULT_TRACE_FILE,
    Channel,
    TraceConfigError,
    Tracer,
    parse_trace_spec,
    validate_event,
    validate_jsonl,
)

__all__ = [
    "AdoptedStat",
    "CATEGORIES",
    "Channel",
    "Counter",
    "DEFAULT_TRACE_FILE",
    "FuncStat",
    "Histogram",
    "PhaseRecord",
    "Profiler",
    "Ratio",
    "Stat",
    "StatsRegistry",
    "TraceConfigError",
    "Tracer",
    "atomic_write_text",
    "parse_trace_spec",
    "validate_event",
    "validate_jsonl",
]
