"""Atomic file writes shared by the result cache and the tracer.

One implementation of the temp-file + ``os.replace`` dance (factored out
of the sweep engine's cache writer) so every on-disk artifact -- cache
entries, trace files, stats dumps -- is crash-safe: readers never
observe a partially written file, and a failed write leaves no debris.
"""

import os
import tempfile


def atomic_write_text(path, text):
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    Parent directories are created as needed.  Safe under concurrent
    writers: the last completed ``os.replace`` wins and every reader
    sees either the old or the new complete content.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1]
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path, blob):
    """Binary twin of :func:`atomic_write_text` (same guarantees)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1]
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def file_signature(stat_result):
    """Identity triple for "is this still the file I read?" checks.

    ``(st_ino, st_size, st_mtime_ns)`` changes whenever an atomic
    ``os.replace`` lands a new file at the same path (the temp file has
    a fresh inode), so comparing signatures detects a concurrent
    rewrite.
    """
    return (stat_result.st_ino, stat_result.st_size,
            stat_result.st_mtime_ns)


def remove_if_unchanged(path, signature):
    """Unlink *path* only if it still matches *signature*.

    Used to discard a corrupt cache entry without racing a concurrent
    writer: if another process has already replaced the entry with a
    fresh (presumably valid) one, the replacement has a different
    inode/mtime and is left alone.  A sub-microsecond TOCTOU window
    remains between the stat and the unlink, but because every write is
    a whole-file atomic replace the worst possible outcome is a lost
    cache entry (recomputed on the next probe), never a corrupt or
    partial read.

    :returns: True when the file was removed.
    """
    if signature is None:
        return False
    try:
        current = os.stat(path)
    except OSError:
        return False
    if file_signature(current) != signature:
        return False
    try:
        os.unlink(path)
    except OSError:
        return False
    return True
