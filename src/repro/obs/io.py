"""Atomic file writes shared by the result cache and the tracer.

One implementation of the temp-file + ``os.replace`` dance (factored out
of the sweep engine's cache writer) so every on-disk artifact -- cache
entries, trace files, stats dumps -- is crash-safe: readers never
observe a partially written file, and a failed write leaves no debris.
"""

import os
import tempfile


def atomic_write_text(path, text):
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    Parent directories are created as needed.  Safe under concurrent
    writers: the last completed ``os.replace`` wins and every reader
    sees either the old or the new complete content.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp-", suffix=os.path.splitext(path)[1]
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path
