"""Structured JSONL event tracing with per-category enable/sampling.

The simulator emits *events* -- small dicts with a category, an event
type, and a cycle timestamp -- into an in-memory buffer that is written
as one JSON object per line (JSONL) through the same atomic-write path
the result cache uses.  Tracing is **off by default** and costs nothing
when off: components hold a per-category :class:`Channel` that is
``None`` when the category is disabled, so the hot path pays one
``is not None`` test at most.

Enabling: set ``REPRO_TRACE`` to a comma-separated category spec::

    REPRO_TRACE=all                 # every category, every event
    REPRO_TRACE=bfetch              # only B-Fetch walk events
    REPRO_TRACE=bfetch,cache:0.01   # walks + 1% sample of cache fills
    REPRO_TRACE=all:0.1             # 10% sample of everything

Sampling is **deterministic**: each channel carries an error-diffusion
accumulator (``acc += rate; emit when acc >= 1``), so a fixed-seed
simulation produces byte-identical trace files on every run -- the
property the CI trace-smoke job asserts.

Event grammar (validated by :func:`validate_event`)::

    {"cat": <category>, "ev": <type>, "cycle": <int>, ...fields}

Categories:

* ``bfetch``   -- lookahead walks (``walk`` events: depth, path end);
* ``prefetch`` -- queue pushes and hierarchy issues;
* ``cache``    -- demand fills and prefetch fills per level;
* ``feedback`` -- prefetched-line outcomes (useful / late / useless);
* ``branch``   -- conditional-branch predictions and mispredicts;
* ``serve``    -- job-server lifecycle (submit/start/progress/done).
"""

import json
import os

from repro.obs.io import atomic_write_text

CATEGORIES = ("bfetch", "prefetch", "cache", "feedback", "branch",
              "frontend", "serve")

_REQUIRED_FIELDS = ("cat", "ev", "cycle")

#: default trace output file when ``REPRO_TRACE_FILE`` is not set
DEFAULT_TRACE_FILE = "repro-trace.jsonl"


class TraceConfigError(ValueError):
    """A malformed ``REPRO_TRACE`` specification."""


def parse_trace_spec(spec):
    """Parse a ``REPRO_TRACE`` value into ``{category: sample_rate}``.

    Grammar: ``cat[:rate][,cat[:rate]...]`` where ``cat`` is one of
    :data:`CATEGORIES` or ``all`` and ``rate`` is a float in (0, 1].
    Returns an empty dict for an empty/None spec (tracing disabled).
    """
    rates = {}
    if not spec:
        return rates
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, rate_text = part.partition(":")
        name = name.strip()
        if rate_text:
            try:
                rate = float(rate_text)
            except ValueError:
                raise TraceConfigError(
                    "bad sample rate %r in REPRO_TRACE part %r"
                    % (rate_text, part)
                )
            if not 0.0 < rate <= 1.0:
                raise TraceConfigError(
                    "sample rate must be in (0, 1], got %r in %r"
                    % (rate, part)
                )
        else:
            rate = 1.0
        if name == "all":
            for category in CATEGORIES:
                rates.setdefault(category, rate)
        elif name in CATEGORIES:
            rates[name] = rate
        else:
            raise TraceConfigError(
                "unknown trace category %r (choose from %s or 'all')"
                % (name, ", ".join(CATEGORIES))
            )
    return rates


class Channel(object):
    """One enabled category: deterministic sampler + shared buffer.

    Components cache the channel (or ``None``) at assembly time; the
    per-event cost when enabled is one accumulator update and one
    ``list.append``.
    """

    __slots__ = ("category", "rate", "_acc", "_buffer")

    def __init__(self, category, rate, buffer):
        self.category = category
        self.rate = rate
        self._acc = 0.0
        self._buffer = buffer

    def emit(self, ev, cycle, **fields):
        """Record one event (subject to this channel's sampling rate)."""
        rate = self.rate
        if rate < 1.0:
            acc = self._acc + rate
            if acc < 1.0:
                self._acc = acc
                return False
            self._acc = acc - 1.0
        event = {"cat": self.category, "ev": ev, "cycle": cycle}
        event.update(fields)
        self._buffer.append(event)
        return True


class Tracer(object):
    """Buffered JSONL event tracer.

    :param rates: ``{category: sample_rate}`` (see
        :func:`parse_trace_spec`); empty disables every channel.
    :param path: output file for :meth:`flush`; None keeps events
        in memory only (tests, programmatic use).
    """

    def __init__(self, rates=None, path=None):
        self.rates = dict(rates or {})
        self.path = path
        self.events = []
        self._channels = {
            category: Channel(category, rate, self.events)
            for category, rate in self.rates.items()
        }

    @classmethod
    def from_env(cls, environ=None):
        """Build a tracer from ``REPRO_TRACE`` / ``REPRO_TRACE_FILE``.

        Returns None when ``REPRO_TRACE`` is unset or empty -- the
        "tracing off" fast path the components test with ``is None``.
        """
        environ = os.environ if environ is None else environ
        rates = parse_trace_spec(environ.get("REPRO_TRACE"))
        if not rates:
            return None
        path = environ.get("REPRO_TRACE_FILE") or DEFAULT_TRACE_FILE
        return cls(rates, path=path)

    def channel(self, category):
        """The :class:`Channel` for *category*, or None when disabled."""
        return self._channels.get(category)

    @property
    def enabled(self):
        return bool(self._channels)

    def counts(self):
        """``{category: recorded event count}`` for summaries."""
        counts = {}
        for event in self.events:
            category = event["cat"]
            counts[category] = counts.get(category, 0) + 1
        return counts

    def to_jsonl(self):
        """Render the buffer as JSONL text (sorted keys: byte-stable)."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.events
        )

    def flush(self, path=None):
        """Atomically write the buffered events as JSONL.

        :returns: the output path, or None when there is nowhere to
            write (no *path* argument and no configured ``self.path``).
        """
        path = path or self.path
        if not path:
            return None
        return atomic_write_text(path, self.to_jsonl())

    def clear(self):
        del self.events[:]


# ----------------------------------------------------------------------
# schema validation (tests + the CI trace-smoke job)

def validate_event(event):
    """Check one decoded event against the trace grammar.

    :returns: list of problem strings (empty when valid).
    """
    problems = []
    if not isinstance(event, dict):
        return ["event is not an object: %r" % (event,)]
    for field in _REQUIRED_FIELDS:
        if field not in event:
            problems.append("missing required field %r" % field)
    category = event.get("cat")
    if category is not None and category not in CATEGORIES:
        problems.append("unknown category %r" % category)
    cycle = event.get("cycle")
    if cycle is not None and (not isinstance(cycle, int)
                              or isinstance(cycle, bool) or cycle < 0):
        problems.append("cycle must be a non-negative integer, got %r"
                        % (cycle,))
    ev = event.get("ev")
    if ev is not None and not isinstance(ev, str):
        problems.append("ev must be a string, got %r" % (ev,))
    return problems


def validate_jsonl(text):
    """Validate a whole JSONL trace; returns a list of problem strings."""
    problems = []
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            problems.append("line %d: unparseable JSON (%s)" % (number, exc))
            continue
        for problem in validate_event(event):
            problems.append("line %d: %s" % (number, problem))
    return problems
