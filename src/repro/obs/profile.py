"""Opt-in wall-clock profiling sections.

A :class:`Profiler` accumulates named phases -- each with wall-clock
seconds, an invocation count, and an optional *item* count (simulated
instructions, batch jobs, ...) from which it derives a rate.  The perf
harness uses it to split component timings into build/run phases and
the sweep engine attaches one to every
:class:`~repro.resilience.BatchReport` so the ``[resilience]`` summary
shows where a batch spent its time.

Cost model: two ``perf_counter`` calls per section enter/exit -- far
below the <5% observability overhead budget -- and nothing at all when
no section is ever opened.
"""

import time
from collections import OrderedDict
from contextlib import contextmanager


class PhaseRecord(object):
    """Accumulated timing for one named phase."""

    __slots__ = ("name", "seconds", "calls", "items")

    def __init__(self, name):
        self.name = name
        self.seconds = 0.0
        self.calls = 0
        self.items = 0

    @property
    def rate(self):
        """Items per second (0.0 when no items or no time recorded)."""
        return self.items / self.seconds if self.seconds else 0.0

    def as_dict(self):
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "items": self.items,
            "rate": self.rate,
        }


class Profiler(object):
    """Named wall-clock sections with item-rate accounting."""

    def __init__(self):
        self.phases = OrderedDict()

    def _phase(self, name):
        phase = self.phases.get(name)
        if phase is None:
            phase = self.phases[name] = PhaseRecord(name)
        return phase

    @contextmanager
    def section(self, name, items=0):
        """Time a ``with`` block under *name*, crediting *items* to it."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start, items)

    def add(self, name, seconds, items=0):
        """Record *seconds* (and *items*) against phase *name* directly."""
        phase = self._phase(name)
        phase.seconds += seconds
        phase.calls += 1
        phase.items += items

    def as_dict(self):
        return OrderedDict(
            (name, phase.as_dict()) for name, phase in self.phases.items()
        )

    @property
    def total_seconds(self):
        return sum(phase.seconds for phase in self.phases.values())

    def summary(self):
        """Compact one-line rendering: ``probe 0.01s, execute 1.2s (8k/s)``."""
        parts = []
        for name, phase in self.phases.items():
            text = "%s %.3gs" % (name, phase.seconds)
            if phase.items:
                text += " (%.3g/s)" % phase.rate
            parts.append(text)
        return ", ".join(parts)

    def render(self):
        """Multi-line table for CLI output."""
        lines = ["%-20s %10s %8s %12s %12s"
                 % ("phase", "seconds", "calls", "items", "items/s")]
        for name, phase in self.phases.items():
            lines.append(
                "%-20s %10.4f %8d %12d %12.0f"
                % (name, phase.seconds, phase.calls, phase.items, phase.rate)
            )
        return "\n".join(lines)
