"""Programs, labels, and basic-block / CFG extraction.

A :class:`Program` is an ordered list of :class:`~repro.isa.Instr` plus a
label table.  Each instruction gets a 4-byte-spaced PC starting at
``base_pc``, mirroring a real text segment so that PC-indexed predictor and
prefetcher structures hash realistic addresses.
"""

from repro.isa.opcodes import BRANCHES, COND_BRANCHES, Op

INSTR_BYTES = 4


class ProgramError(ValueError):
    """Raised for malformed programs (bad targets, missing halt, ...)."""


class Program:
    """An executable program for the reproduction ISA.

    :param instrs: list of :class:`~repro.isa.Instr`; targets may be label
        strings (resolved against *labels*) or integer instruction indices.
    :param labels: mapping of label name -> instruction index.
    :param base_pc: PC of the first instruction.
    :param name: human-readable name (used in reports).
    """

    def __init__(self, instrs, labels=None, base_pc=0x1000, name="program"):
        if not instrs:
            raise ProgramError("a program needs at least one instruction")
        self.instrs = list(instrs)
        self.labels = dict(labels or {})
        self.base_pc = base_pc
        self.name = name
        self._finalize()

    def _finalize(self):
        n = len(self.instrs)
        for index, instr in enumerate(self.instrs):
            instr.index = index
            instr.pc = self.base_pc + index * INSTR_BYTES
            if instr.target is None:
                continue
            target = instr.target
            if isinstance(target, str):
                if target not in self.labels:
                    raise ProgramError("undefined label %r" % target)
                target = self.labels[target]
                instr.target = target
            if not isinstance(target, int) or isinstance(target, bool):
                raise ProgramError(
                    "branch target must be a label or instruction index, "
                    "got %r" % (target,)
                )
            if not 0 <= target < n:
                raise ProgramError(
                    "branch target %d out of range [0, %d)" % (target, n)
                )

    def __len__(self):
        return len(self.instrs)

    def __getitem__(self, index):
        return self.instrs[index]

    def pc_of(self, index):
        """Return the PC of the instruction at *index*."""
        return self.base_pc + index * INSTR_BYTES

    def index_of(self, pc):
        """Return the instruction index for *pc*."""
        offset = pc - self.base_pc
        if offset % INSTR_BYTES or not 0 <= offset // INSTR_BYTES < len(self.instrs):
            raise ProgramError("pc 0x%x is not inside this program" % pc)
        return offset // INSTR_BYTES

    def validate(self):
        """Check structural invariants; raise :class:`ProgramError` on failure.

        Validates that every register index is in range and that the program
        can terminate (contains a HALT or an obvious backstop).
        """
        has_halt = False
        for instr in self.instrs:
            for reg in (instr.rd, instr.ra, instr.rb):
                if reg is None:
                    continue
                if not isinstance(reg, int) or isinstance(reg, bool) \
                        or not 0 <= reg < 32:
                    raise ProgramError("register index %r out of range"
                                       % (reg,))
            if not isinstance(instr.imm, int) or isinstance(instr.imm, bool):
                raise ProgramError("immediate must be an integer, got %r"
                                   % (instr.imm,))
            if instr.op == Op.HALT:
                has_halt = True
            if instr.op in BRANCHES and instr.op != Op.JR and instr.target is None:
                raise ProgramError("direct branch without target: %r" % instr)
        if not has_halt:
            raise ProgramError("program has no HALT instruction")
        return True


class BasicBlock:
    """A maximal straight-line sequence of instructions.

    :ivar start: index of the first instruction.
    :ivar end: index one past the last instruction.
    :ivar successors: indices of successor blocks' *start* instructions.
    """

    __slots__ = ("start", "end", "successors")

    def __init__(self, start, end):
        self.start = start
        self.end = end
        self.successors = []

    def __len__(self):
        return self.end - self.start

    def __repr__(self):
        return "BasicBlock(%d..%d -> %s)" % (self.start, self.end, self.successors)


def extract_basic_blocks(program):
    """Partition *program* into basic blocks and link successors.

    Returns a list of :class:`BasicBlock` ordered by start index.  Used by
    the workload validators and the Fig. 3 variation analysis; the simulator
    itself discovers blocks dynamically like the hardware would.
    """
    n = len(program)
    leaders = {0}
    for index, instr in enumerate(program.instrs):
        if instr.op in BRANCHES:
            if instr.target is not None:
                leaders.add(instr.target)
            if index + 1 < n:
                leaders.add(index + 1)
        elif instr.op == Op.HALT and index + 1 < n:
            leaders.add(index + 1)
    starts = sorted(leaders)
    blocks = []
    block_of_start = {}
    for position, start in enumerate(starts):
        end = starts[position + 1] if position + 1 < len(starts) else n
        block = BasicBlock(start, end)
        block_of_start[start] = block
        blocks.append(block)
    for block in blocks:
        last = program.instrs[block.end - 1]
        if last.op in COND_BRANCHES:
            block.successors.append(last.target)
            if block.end < n:
                block.successors.append(block.end)
        elif last.op == Op.BR:
            block.successors.append(last.target)
        elif last.op == Op.JR:
            pass  # indirect: unknowable statically
        elif last.op == Op.HALT:
            pass
        elif block.end < n:
            block.successors.append(block.end)
    return blocks
