"""Opcode definitions and classification predicates.

Opcodes are plain ``IntEnum`` members so the interpreter can dispatch on
integers; classification sets are precomputed frozensets, which keeps the
per-instruction cost of ``is_branch``/``is_mem`` at a single hash lookup.
"""

from enum import IntEnum


class Op(IntEnum):
    """Instruction opcodes of the reproduction ISA."""

    # ALU register-register
    ADD = 1
    SUB = 2
    MUL = 3
    XOR = 4
    AND = 5
    OR = 6
    SLL = 7
    SRL = 8
    CMPEQ = 9
    CMPLT = 10
    # ALU register-immediate
    ADDI = 11
    SUBI = 12
    ANDI = 13
    SLLI = 14
    SRLI = 15
    LI = 16  # rd <- imm
    MOV = 17  # rd <- ra
    # memory
    LOAD = 18  # rd <- mem[ra + imm]
    STORE = 19  # mem[ra + imm] <- rb
    # control flow
    BEQZ = 20  # if ra == 0 goto target
    BNEZ = 21  # if ra != 0 goto target
    BLTZ = 22  # if ra < 0 (signed) goto target
    BGEZ = 23  # if ra >= 0 (signed) goto target
    BR = 24  # unconditional direct
    JR = 25  # unconditional indirect, pc <- ra
    # misc
    NOP = 26
    HALT = 27


COND_BRANCHES = frozenset({Op.BEQZ, Op.BNEZ, Op.BLTZ, Op.BGEZ})
UNCOND_BRANCHES = frozenset({Op.BR, Op.JR})
BRANCHES = COND_BRANCHES | UNCOND_BRANCHES
LOADS = frozenset({Op.LOAD})
STORES = frozenset({Op.STORE})
MEM_OPS = LOADS | STORES
IMM_ALU = frozenset({Op.ADDI, Op.SUBI, Op.ANDI, Op.SLLI, Op.SRLI, Op.LI, Op.MOV})
REG_ALU = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.XOR, Op.AND, Op.OR, Op.SLL, Op.SRL, Op.CMPEQ, Op.CMPLT}
)
ALU_OPS = IMM_ALU | REG_ALU

# int-indexed classification tables for hot loops: ``IS_BRANCH[op]`` is a
# single list index, vs. a property call plus frozenset probe for
# ``instr.is_branch`` -- measurably cheaper at simulation scale.
NUM_OPS = int(max(Op)) + 1
IS_BRANCH = tuple(op in BRANCHES for op in range(NUM_OPS))
IS_COND_BRANCH = tuple(op in COND_BRANCHES for op in range(NUM_OPS))
IS_ALU = tuple(op in ALU_OPS for op in range(NUM_OPS))
IS_MEM = tuple(op in MEM_OPS for op in range(NUM_OPS))


def is_branch(op):
    """Return True for any control-flow instruction (conditional or not)."""
    return op in BRANCHES


def is_cond_branch(op):
    """Return True for conditional branches only."""
    return op in COND_BRANCHES


def is_load(op):
    """Return True for load instructions."""
    return op in LOADS


def is_store(op):
    """Return True for store instructions."""
    return op in STORES


def is_mem(op):
    """Return True for loads and stores."""
    return op in MEM_OPS
