"""A tiny textual assembler.

Only used by tests, docs, and hand-written example kernels; generated
workloads build :class:`~repro.isa.Instr` lists directly.  Syntax::

    start:  li    r1, 100
    loop:   load  r2, 8(r3)        ; comment
            add   r4, r4, r2
            addi  r3, r3, 8
            subi  r1, r1, 1
            bnez  r1, loop
            halt

Registers are ``r0``-``r31``; immediates accept decimal and ``0x`` hex;
memory operands are ``imm(rN)``.
"""

import re

from repro.isa.instructions import Instr
from repro.isa.opcodes import Op
from repro.isa.program import Program

_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\((r\d+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")

_REG_REG = {Op.ADD, Op.SUB, Op.MUL, Op.XOR, Op.AND, Op.OR, Op.SLL, Op.SRL,
            Op.CMPEQ, Op.CMPLT}
_REG_IMM = {Op.ADDI, Op.SUBI, Op.ANDI, Op.SLLI, Op.SRLI}
_BRANCH_COND = {Op.BEQZ, Op.BNEZ, Op.BLTZ, Op.BGEZ}


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with a line number."""


def _reg(token, lineno):
    if not token.startswith("r"):
        raise AssemblerError("line %d: expected register, got %r" % (lineno, token))
    try:
        value = int(token[1:])
    except ValueError:
        raise AssemblerError("line %d: bad register %r" % (lineno, token))
    if not 0 <= value < 32:
        raise AssemblerError("line %d: register %r out of range" % (lineno, token))
    return value


def _imm(token, lineno):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError("line %d: bad immediate %r" % (lineno, token))


def assemble(text, base_pc=0x1000, name="asm"):
    """Assemble *text* into a :class:`~repro.isa.Program`."""
    instrs = []
    labels = {}
    pending = []  # (instr, label, lineno) for forward references
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels[match.group(1)] = len(instrs)
            line = line[match.end():].strip()
        if not line:
            continue
        parts = line.replace(",", " ").split()
        if not parts:
            # e.g. a line of bare commas: non-empty but tokenless
            raise AssemblerError(
                "line %d: stray punctuation %r" % (lineno, raw.strip())
            )
        mnemonic = parts[0].lower()
        operands = parts[1:]
        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AssemblerError("line %d: unknown mnemonic %r" % (lineno, mnemonic))
        instr = _parse_operands(op, operands, lineno, pending)
        instrs.append(instr)
    for instr, label, lineno in pending:
        if label not in labels:
            raise AssemblerError("line %d: undefined label %r" % (lineno, label))
        instr.target = labels[label]
    return Program(instrs, labels=labels, base_pc=base_pc, name=name)


def _parse_operands(op, operands, lineno, pending):
    def expect(count):
        if len(operands) != count:
            raise AssemblerError(
                "line %d: %s expects %d operands, got %d"
                % (lineno, op.name.lower(), count, len(operands))
            )

    if op in _REG_REG:
        expect(3)
        return Instr(op, rd=_reg(operands[0], lineno), ra=_reg(operands[1], lineno),
                     rb=_reg(operands[2], lineno))
    if op in _REG_IMM:
        expect(3)
        return Instr(op, rd=_reg(operands[0], lineno), ra=_reg(operands[1], lineno),
                     imm=_imm(operands[2], lineno))
    if op == Op.LI:
        expect(2)
        return Instr(op, rd=_reg(operands[0], lineno), imm=_imm(operands[1], lineno))
    if op == Op.MOV:
        expect(2)
        return Instr(op, rd=_reg(operands[0], lineno), ra=_reg(operands[1], lineno))
    if op in (Op.LOAD, Op.STORE):
        expect(2)
        match = _MEM_RE.match(operands[1])
        if not match:
            raise AssemblerError(
                "line %d: bad memory operand %r" % (lineno, operands[1]))
        imm = int(match.group(1), 0)
        base = _reg(match.group(2), lineno)
        if op == Op.LOAD:
            return Instr(op, rd=_reg(operands[0], lineno), ra=base, imm=imm)
        return Instr(op, rb=_reg(operands[0], lineno), ra=base, imm=imm)
    if op in _BRANCH_COND:
        expect(2)
        instr = Instr(op, ra=_reg(operands[0], lineno))
        pending.append((instr, operands[1], lineno))
        return instr
    if op == Op.BR:
        expect(1)
        instr = Instr(op)
        pending.append((instr, operands[0], lineno))
        return instr
    if op == Op.JR:
        expect(1)
        return Instr(op, ra=_reg(operands[0], lineno))
    if op in (Op.NOP, Op.HALT):
        expect(0)
        return Instr(op)
    raise AssemblerError("line %d: unhandled opcode %s" % (lineno, op.name))
