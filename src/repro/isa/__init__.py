"""A small RISC instruction set (ALPHA-flavoured) used by the simulator.

The B-Fetch mechanism speculates on *register transformations across basic
blocks*, so the reproduction needs programs with genuine register dataflow
rather than bare address traces.  This package defines:

* :mod:`repro.isa.opcodes` -- the opcode space and classification helpers,
* :mod:`repro.isa.instructions` -- the static instruction record,
* :mod:`repro.isa.program` -- programs, labels, basic blocks and CFGs,
* :mod:`repro.isa.assembler` -- a tiny textual assembler for tests/examples.
"""

from repro.isa.opcodes import Op, is_branch, is_cond_branch, is_load, is_mem, is_store
from repro.isa.instructions import Instr
from repro.isa.program import BasicBlock, Program, extract_basic_blocks
from repro.isa.assembler import AssemblerError, assemble

NUM_REGS = 32
ZERO_REG = 31  # r31 reads as zero, ALPHA-style
WORD_SIZE = 8  # bytes
MASK64 = (1 << 64) - 1

__all__ = [
    "Op",
    "Instr",
    "Program",
    "BasicBlock",
    "extract_basic_blocks",
    "assemble",
    "AssemblerError",
    "is_branch",
    "is_cond_branch",
    "is_load",
    "is_store",
    "is_mem",
    "NUM_REGS",
    "ZERO_REG",
    "WORD_SIZE",
    "MASK64",
]
