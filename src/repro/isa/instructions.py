"""Static instruction record.

``Instr`` is deliberately a ``__slots__`` class rather than a dataclass: the
functional interpreter touches every field of every dynamic instruction, and
slot access is measurably faster than ``__dict__`` lookups at simulation
scale.
"""

from repro.isa.opcodes import (
    ALU_OPS,
    BRANCHES,
    COND_BRANCHES,
    IMM_ALU,
    MEM_OPS,
    Op,
)

_OP_NAMES = {op: op.name.lower() for op in Op}


class Instr:
    """One static instruction.

    Fields not meaningful for an opcode are left at their defaults
    (register index ``None``, immediate ``0``, target ``None``).

    :param op: opcode (:class:`repro.isa.Op`)
    :param rd: destination register index
    :param ra: first source register index (base register for memory ops,
        condition register for branches, jump register for ``JR``)
    :param rb: second source register index (store data register)
    :param imm: immediate / memory displacement
    :param target: static instruction index of the branch target
    """

    __slots__ = ("op", "rd", "ra", "rb", "imm", "target", "index", "pc")

    def __init__(self, op, rd=None, ra=None, rb=None, imm=0, target=None):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb
        self.imm = imm
        self.target = target
        # assigned when the instruction is placed into a Program
        self.index = None
        self.pc = None

    @property
    def is_branch(self):
        return self.op in BRANCHES

    @property
    def is_cond_branch(self):
        return self.op in COND_BRANCHES

    @property
    def is_load(self):
        return self.op == Op.LOAD

    @property
    def is_store(self):
        return self.op == Op.STORE

    @property
    def is_mem(self):
        return self.op in MEM_OPS

    @property
    def is_alu(self):
        return self.op in ALU_OPS

    def sources(self):
        """Return the tuple of source register indices this instruction reads."""
        op = self.op
        if op in MEM_OPS:
            if op == Op.STORE:
                return (self.ra, self.rb)
            return (self.ra,)
        if op in COND_BRANCHES or op == Op.JR:
            return (self.ra,)
        if op in IMM_ALU:
            if op == Op.LI:
                return ()
            return (self.ra,)
        if op in ALU_OPS:
            return (self.ra, self.rb)
        return ()

    def __repr__(self):
        name = _OP_NAMES[self.op]
        parts = []
        if self.rd is not None:
            parts.append("r%d" % self.rd)
        if self.op == Op.LOAD:
            return "load r%d, %d(r%d)" % (self.rd, self.imm, self.ra)
        if self.op == Op.STORE:
            return "store r%d, %d(r%d)" % (self.rb, self.imm, self.ra)
        if self.ra is not None:
            parts.append("r%d" % self.ra)
        if self.rb is not None:
            parts.append("r%d" % self.rb)
        if self.op in IMM_ALU and self.op != Op.MOV:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append("@%s" % self.target)
        return "%s %s" % (name, ", ".join(parts))
