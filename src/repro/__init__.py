"""repro: a full Python reproduction of "B-Fetch: Branch Prediction
Directed Prefetching for Chip-Multiprocessors" (MICRO-2014).

Quickstart::

    from repro import ExperimentRunner

    runner = ExperimentRunner()
    base = runner.run_single("libquantum", "none")
    bf = runner.run_single("libquantum", "bfetch")
    print("speedup:", bf.ipc / base.ipc)

Packages:

* :mod:`repro.core` -- the B-Fetch prefetch engine (the contribution).
* :mod:`repro.isa`, :mod:`repro.cpu` -- ISA + functional/timing models.
* :mod:`repro.branch` -- branch predictors and confidence estimation.
* :mod:`repro.memory` -- caches, DRAM, hierarchy.
* :mod:`repro.prefetchers` -- Stride/SMS/Next-N/Perfect/Tango baselines.
* :mod:`repro.workloads` -- SPEC-like synthetic benchmarks and FOA mixes.
* :mod:`repro.sim` -- system assembly, CMP, experiment runner.
* :mod:`repro.analysis` -- Fig. 3 / Fig. 7 / Table I analyses.
"""

from repro.sim import (
    CMPSystem,
    ExperimentRunner,
    RunResult,
    System,
    SystemConfig,
    geomean,
)
from repro.workloads import BENCHMARKS, PREFETCH_SENSITIVE, build_workload

__version__ = "1.0.0"

__all__ = [
    "ExperimentRunner",
    "System",
    "CMPSystem",
    "SystemConfig",
    "RunResult",
    "geomean",
    "BENCHMARKS",
    "PREFETCH_SENSITIVE",
    "build_workload",
    "__version__",
]
