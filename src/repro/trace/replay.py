"""Trace replay: a drop-in functional-machine replacement.

:class:`TraceReplaySource` exposes the exact surface the timing model
and its collaborators consume from :class:`~repro.cpu.functional.Machine`
-- ``step()`` returning ``(instr, taken, ea)``, ``pc``, ``regs``,
``index``, ``program``, ``instret``, ``snapshot()``/``restore()`` -- but
serves every step from a decoded trace instead of interpreting the
program.  Register state is maintained from the recorded write-back
values, so hooks that read the architectural register file at commit
time (the B-Fetch engine's ARF mirror) observe byte-identical values.
``index``/``instret``/``restarts`` are pure functions of the replay
cursor, so the per-step fast path is one tuple unpack and at most one
register assignment.

Two situations leave the recorded window:

* **live continuation** -- when a caller steps past the last record
  (the CMP scheduler's keep-running overshoot does this on every mix
  run), a real machine is materialised from the trailer's architectural
  state and silently takes over;
* **chunked execution** -- checkpoint/sanitizer runs drive the source
  through the ordinary per-cycle loop; snapshots carry the replay
  cursor, and cross-engine restores are rejected (the system
  fingerprint carries an ``engine`` marker for the same reason).

``verify_chunk`` is the sanitizer's differential oracle hook
(``REPRO_CHECK=full``): it lazily advances a shadow lockstep machine
and compares every recorded step against the live interpreter, raising
:class:`~repro.trace.format.TraceError` on the first divergence.
"""

from bisect import bisect_right

from repro.checkpoint import CheckpointError
from repro.cpu.functional import K_HALT, Machine, decode_program, write_regs_of
from repro.trace.format import TraceError


class TraceReplaySource(object):
    """Replays a :class:`~repro.trace.format.TraceData` as a machine.

    :param workload: the :class:`~repro.workloads.Workload` the trace
        was recorded from (program + initial memory image).
    :param trace: the decoded trace; its metadata must already have been
        validated against the workload identity by the store.
    """

    __slots__ = (
        "program", "trace", "regs", "halted", "pos", "_workload",
        "_records", "_reg_of", "_pc_of", "_instrs", "_halt_positions",
        "_machine", "_shadow", "_shadow_pos",
    )

    def __init__(self, workload, trace):
        self.program = workload.program
        self.trace = trace
        self._workload = workload
        self._records = trace.records
        self._reg_of = write_regs_of(workload.program)
        self._pc_of = workload.program.pc_of
        self._instrs = workload.program.instrs
        decoded = decode_program(workload.program)
        self._halt_positions = [
            pos for pos, record in enumerate(trace.records)
            if decoded[record[0]][0] == K_HALT
        ]
        self.regs = [0] * 32
        self.halted = False
        self.pos = 0
        self._machine = None
        self._shadow = None
        self._shadow_pos = 0

    # ------------------------------------------------------------------
    # derived architectural cursor (Machine attribute parity)

    @property
    def index(self):
        """Static index of the next instruction (``Machine.index``)."""
        machine = self._machine
        if machine is not None:
            return machine.index
        pos = self.pos
        records = self._records
        if pos < len(records):
            return records[pos][0]
        return self.trace.final_state["index"]

    @property
    def pc(self):
        """Current architectural PC (same semantics as ``Machine.pc``)."""
        return self._pc_of(self.index)

    @property
    def instret(self):
        machine = self._machine
        if machine is not None:
            return machine.instret
        return self.pos

    @property
    def restarts(self):
        machine = self._machine
        if machine is not None:
            return machine.restarts
        return bisect_right(self._halt_positions, self.pos - 1)

    # ------------------------------------------------------------------

    def step(self):
        """Serve one recorded step; returns ``(instr, taken, ea)``.

        Past the recorded window this transparently materialises a live
        machine from the trailer and delegates.
        """
        pos = self.pos
        records = self._records
        if pos >= len(records):
            return self._live_step()
        index, taken, ea, value = records[pos]
        self.pos = pos + 1
        if value is not None:
            self.regs[self._reg_of[index]] = value
        return self._instrs[index], taken, ea

    def _live_step(self):
        machine = self._machine
        if machine is None:
            machine = self._make_live_machine()
        return machine.step()

    def _make_live_machine(self):
        """Build a real machine at the trailer's architectural state."""
        final = self.trace.final_state
        memory = dict(self._workload.memory)
        for addr, value in final["memory_delta"]:
            memory[int(addr)] = value
        machine = Machine(self.program, memory)
        machine.regs = [int(value) for value in final["regs"]]
        machine.index = final["index"]
        machine.halted = final["halted"]
        machine.instret = final["instret"]
        machine.restarts = final["restarts"]
        self._machine = machine
        # share the register file object so hooks holding either alias
        # observe the same architectural state
        self.regs = machine.regs
        return machine

    def seek(self, pos):
        """Jump the architectural cursor to record position *pos*.

        Used by the fused replay engine to write its consumed-record
        count back after a run; ``regs`` is expected to have been
        maintained by the caller (it aliases this object's list).
        """
        self.pos = pos

    # ------------------------------------------------------------------
    # differential oracle (sanitizer REPRO_CHECK=full)

    def verify_chunk(self, max_steps=4096):
        """Cross-validate recorded steps against a live interpreter.

        Lazily advances a shadow lockstep machine from the start of the
        trace towards the current replay position, at most *max_steps*
        per call (the sanitizer calls this at its full-mode cadence, so
        the whole consumed prefix gets verified incrementally).  Raises
        :class:`TraceError` on the first divergence.
        """
        shadow = self._shadow
        if shadow is None:
            shadow = self._shadow = Machine(
                self.program, dict(self._workload.memory)
            )
        records = self._records
        reg_of = self._reg_of
        target = min(self.pos, self._shadow_pos + max_steps)
        pos = self._shadow_pos
        while pos < target:
            index = shadow.index
            expect_index, expect_taken, expect_ea, expect_value = records[pos]
            if index != expect_index:
                raise TraceError(
                    "replay divergence at step %d: trace executes "
                    "instruction %d, oracle executes %d"
                    % (pos, expect_index, index)
                )
            _instr, taken, ea = shadow.step()
            value = None
            rd = reg_of[index]
            if rd >= 0:
                value = shadow.regs[rd]
            if (taken, ea, value) != (expect_taken, expect_ea, expect_value):
                raise TraceError(
                    "replay divergence at step %d (instruction %d): trace "
                    "has (taken=%r, ea=%r, value=%r), oracle has "
                    "(taken=%r, ea=%r, value=%r)"
                    % (pos, index, expect_taken, expect_ea, expect_value,
                       taken, ea, value)
                )
            pos += 1
        self._shadow_pos = pos

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Replay-aware architectural snapshot.

        Shape-compatible with ``Machine.snapshot`` plus a ``replay_pos``
        cursor.  While still inside the recorded window the memory image
        is not tracked (it is reconstructible by replaying), so
        ``memory`` is ``None``; once live continuation has begun the
        real machine state is embedded.
        """
        if self._machine is not None:
            state = self._machine.snapshot()
            state["replay_pos"] = self.pos
            return state
        return {
            "regs": list(self.regs),
            "memory": None,
            "index": self.index,
            "halted": self.halted,
            "instret": self.instret,
            "restarts": self.restarts,
            "replay_pos": self.pos,
        }

    def restore(self, state):
        """Restore from :meth:`snapshot` output.

        Lockstep snapshots (no ``replay_pos``) are rejected -- the
        system fingerprint's engine marker should already have filtered
        them, this is defence in depth.
        """
        pos = state.get("replay_pos")
        if pos is None:
            raise CheckpointError(
                "lockstep checkpoint cannot restore into a trace-replay "
                "source"
            )
        self.pos = pos
        self.halted = state["halted"]
        self._shadow = None
        self._shadow_pos = 0
        if state["memory"] is not None:
            machine = Machine(self.program, {})
            machine.restore({key: state[key] for key in (
                "regs", "memory", "index", "halted", "instret", "restarts",
            )})
            self._machine = machine
            self.regs = machine.regs
        else:
            self._machine = None
            self.regs = [int(value) for value in state["regs"]]

    def __len__(self):  # pragma: no cover - debugging nicety
        return len(self._records)
