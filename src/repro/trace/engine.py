"""Fused replay timing engine.

``run_replay`` is an exact transcription of the lockstep hot path --
:meth:`OutOfOrderCore.run` / ``step_cycle`` / ``_dispatch`` /
``_handle_branch`` -- specialised for a pre-decoded trace *view*: the
per-step functional interpretation, attribute loads and dispatch
branching are all hoisted out, leaving one tuple unpack per dynamic
instruction.  Every stateful operation (hierarchy accesses, predictor
training, prefetcher hooks, counter updates, stall arithmetic) happens
in the same order with the same arguments as the lockstep loop, so the
resulting :class:`~repro.sim.system.RunResult` is byte-identical --
``tests/test_trace_replay.py`` enforces this for every catalog
prefetcher.

The *view* (:func:`build_view`) is config-independent: it is memoised
per trace by :mod:`repro.trace.store` and shared by every sweep cell
over the same (benchmark, variant, steps).  :func:`branch_outcomes`
additionally pre-computes the direction-predictor and BTB responses --
a pure function of the (pc, taken, next_pc) stream -- which is valid
whenever nothing observes live predictor state (i.e. for every
prefetcher without an ``attach`` hook; the B-Fetch engine reads the
predictor during lookahead walks and therefore runs without the
pre-pass).

Fused-path preconditions (checked by the caller,
:meth:`repro.sim.system.System.run`): non-chunked run, budget within
the recorded window, branch tracing disabled.
"""

from repro.cpu.ooo import _noop_hook
from repro.isa.opcodes import (
    IS_ALU as _IS_ALU,
    IS_BRANCH as _IS_BRANCH,
    IS_COND_BRANCH as _IS_COND_BRANCH,
    Op,
)
from repro.cpu.functional import write_regs_of
from repro.prefetchers.base import Prefetcher as _BasePrefetcher

_OP_LOAD = int(Op.LOAD)
_OP_STORE = int(Op.STORE)
_OP_MUL = int(Op.MUL)
_OP_JR = int(Op.JR)

# view kinds (dispatch codes for the fused loop)
V_LOAD = 0
V_STORE = 1
V_COND = 2
V_JR = 3
V_BR = 4
V_MUL = 5
V_ALU = 6


def build_view(workload, trace):
    """Pre-decode a trace into fused-loop view tuples.

    Each entry is ``(vkind, instr, pc, ra, rb, rd, ea, taken, value,
    wreg, taken_target, next_pc)`` where *ra*/*rb* are the operand
    registers the dispatch stage waits on (-1 when it doesn't), *rd* is
    the raw destination-register field used for ``reg_ready`` updates
    (the lockstep core writes it even for the hardwired-zero register,
    so the view must too), *wreg* is the folded architectural write
    register for *value* (-1 when the step writes nothing), and
    *next_pc* is the PC after this instruction (what ``machine.pc``
    reads as during commit).  Deliberately config-independent so one
    view serves every sweep cell.
    """
    program = workload.program
    instrs = program.instrs
    pc_of = program.pc_of
    reg_of = write_regs_of(program)
    records = trace.records
    final_index = trace.final_state["index"]
    count = len(records)
    view = []
    append = view.append
    for pos in range(count):
        index, taken, ea, value = records[pos]
        instr = instrs[index]
        op = instr.op
        pc = instr.pc
        next_index = records[pos + 1][0] if pos + 1 < count else final_index
        ra = instr.ra if instr.ra is not None else -1
        rb = instr.rb
        if rb is None or not (op == _OP_STORE or _IS_ALU[op]):
            rb = -1
        rd = instr.rd if instr.rd is not None else -1
        taken_target = 0
        if op == _OP_LOAD:
            vkind = V_LOAD
        elif op == _OP_STORE:
            vkind = V_STORE
        elif _IS_COND_BRANCH[op]:
            vkind = V_COND
            taken_target = pc + 4 * (instr.target - instr.index)
        elif op == _OP_JR:
            vkind = V_JR
        elif _IS_BRANCH[op]:
            vkind = V_BR
            taken_target = pc + 4 * (instr.target - instr.index)
        elif op == _OP_MUL:
            vkind = V_MUL
        else:
            vkind = V_ALU
        append((
            vkind, instr, pc, ra, rb, rd, ea, taken, value,
            reg_of[index] if value is not None else -1,
            taken_target, pc_of(next_index),
        ))
    return view


def branch_outcomes(view, predictor, btb):
    """Pre-compute per-branch predictor/BTB responses for a view.

    The direction predictor and BTB evolve as a pure function of the
    committed branch stream, so their per-branch answers can be computed
    once per (trace, predictor-config) with throwaway instances and
    shared across every sweep cell that doesn't observe live predictor
    state.  Entries align with the view's cond/JR records in order:
    ``(predicted, correct)`` for conditional branches,
    ``(predicted_target, correct)`` for indirect jumps.
    """
    outcomes = []
    append = outcomes.append
    predict = predictor.predict
    update = predictor.update
    lookup = btb.lookup
    btb_update = btb.update
    for entry in view:
        vkind = entry[0]
        if vkind == V_COND:
            pc = entry[2]
            taken = entry[7]
            predicted = predict(pc)
            update(pc, taken)
            append((predicted, predicted == taken))
        elif vkind == V_JR:
            pc = entry[2]
            next_pc = entry[11]
            predicted_target = lookup(pc)
            btb_update(pc, next_pc)
            append((predicted_target, predicted_target == next_pc))
    return outcomes


def run_replay(system, budget, view, outcomes=None):
    """Run *system*'s core for *budget* instructions off the trace view.

    Exact fused transcription of ``OutOfOrderCore.run``; mutates the
    core, hierarchy, predictor and prefetcher exactly as lockstep
    execution would (predictor/BTB/confidence are left untouched when
    *outcomes* supplies the pre-computed responses -- their state is
    unobservable in a non-chunked run).  Returns the final cycle.
    """
    core = system.core
    machine = system.machine  # the TraceReplaySource
    cfg = core.config
    hierarchy = core.hierarchy
    predictor = core.predictor
    confidence = core.confidence
    btb = core.btb
    prefetcher = core.prefetcher

    # hoisted configuration / bound methods
    width = cfg.width
    rob_cap = cfg.rob_entries
    redirect_penalty = cfg.redirect_penalty
    alu_latency = cfg.alu_latency
    mul_latency = cfg.mul_latency
    store_latency = cfg.store_latency
    drain_rate = cfg.prefetch_drain_rate
    fetch_shift = core._fetch_shift
    l1_latency = hierarchy.config.l1_latency
    h_load = hierarchy.load
    h_store = hierarchy.store
    h_ifetch = hierarchy.ifetch
    h_oracle = hierarchy.access_oracle
    is_perfect = prefetcher is not None and prefetcher.is_perfect
    pf_drain = prefetcher.drain if prefetcher is not None else None
    on_commit = core._pf_on_commit
    on_branch_decode = core._pf_on_branch_decode
    on_load = None
    on_store = None
    if prefetcher is not None and not is_perfect:
        hook = prefetcher.on_load
        on_load = None if _noop_hook(_BasePrefetcher.on_load, hook) else hook
        hook = prefetcher.on_store
        on_store = (
            None if _noop_hook(_BasePrefetcher.on_store, hook) else hook
        )
    predict = predictor.predict
    predictor_update = predictor.update
    confidence_update = confidence.update
    btb_lookup = btb.lookup
    btb_update = btb.update

    # live core state as locals
    regs = machine.regs
    reg_ready = core.reg_ready
    rob = core.rob
    head = core._rob_head
    fetch_stall_until = core.fetch_stall_until
    fetch_block = core._fetch_block
    retired = core.retired
    cond_branches = core.cond_branches
    branches = core.branches
    mispredicts = core.mispredicts
    fetch_branch_hist = core.fetch_branch_hist
    fetch_cycles = core.fetch_cycles
    rob_full_stalls = core.rob_full_stalls
    flush_stall_cycles = core.flush_stall_cycles
    now = core.cycle
    pos = machine.pos
    bcursor = 0
    rob_append = rob.append

    core.start(budget)

    while True:
        # retire (in order, up to width)
        limit = head + width
        rob_len = len(rob)
        while head < rob_len and head < limit and rob[head] <= now:
            head += 1
            retired += 1
        if head > 4096:  # compact the ring buffer
            del rob[:head]
            head = 0
        if retired >= budget:
            now += 1
            break

        # drain queued prefetches into the hierarchy
        if pf_drain is not None and len(prefetcher.queue):
            pf_drain(hierarchy, now, drain_rate)

        # fetch / dispatch
        fetched = 0
        branches_in_group = 0
        if now >= fetch_stall_until:
            in_flight = len(rob) - head
            dispatched_total = retired + in_flight
            while (
                fetched < width
                and in_flight < rob_cap
                and dispatched_total < budget
            ):
                (vkind, instr, pc, ra, rb, rd, ea, taken, value, wreg,
                 taken_target, next_pc) = view[pos]
                pos += 1
                if wreg >= 0:
                    regs[wreg] = value
                block = pc >> fetch_shift
                if block != fetch_block:
                    fetch_block = block
                    ifetch_latency = h_ifetch(pc, now)
                    if ifetch_latency > l1_latency:
                        fetch_stall_until = now + ifetch_latency
                fetched += 1
                in_flight += 1
                dispatched_total += 1

                # ---- dispatch (transcribed from OutOfOrderCore._dispatch)
                ready = now + 1
                if ra >= 0 and reg_ready[ra] > ready:
                    ready = reg_ready[ra]
                if rb >= 0 and reg_ready[rb] > ready:
                    ready = reg_ready[rb]
                group_ends = False
                if vkind == 0:  # load
                    if is_perfect:
                        latency = h_oracle(ea, ready)
                    else:
                        latency, hit = h_load(ea, ready)
                        if on_load is not None:
                            on_load(pc, ea, hit, now)
                    complete = ready + latency
                    reg_ready[rd] = complete
                elif vkind == 1:  # store
                    if is_perfect:
                        h_oracle(ea, ready)
                    else:
                        h_store(ea, ready)
                        if on_store is not None:
                            on_store(pc, ea, True, now)
                    complete = ready + store_latency
                elif vkind == 2:  # conditional branch
                    complete = ready + alu_latency
                    if outcomes is None:
                        history = predictor.history
                        predicted = predict(pc)
                        correct = predicted == taken
                    else:
                        predicted, correct = outcomes[bcursor]
                        bcursor += 1
                    cond_branches += 1
                    if not correct:
                        mispredicts += 1
                    if outcomes is None:
                        confidence_update(pc, history, correct, taken)
                        predictor_update(pc, taken)
                    if on_branch_decode is not None:
                        on_branch_decode(pc, predicted, taken_target, now)
                    if not correct:
                        fetch_stall_until = complete + redirect_penalty
                        group_ends = True
                    else:
                        group_ends = predicted
                    branches += 1
                elif vkind == 3:  # indirect jump
                    complete = ready + alu_latency
                    if outcomes is None:
                        predicted_target = btb_lookup(pc)
                        btb_update(pc, next_pc)
                        correct = predicted_target == next_pc
                        confidence_update(pc, predictor.history, correct,
                                          True)
                    else:
                        predicted_target, correct = outcomes[bcursor]
                        bcursor += 1
                    if on_branch_decode is not None:
                        on_branch_decode(pc, True, predicted_target, now)
                    if not correct:
                        mispredicts += 1
                        fetch_stall_until = complete + redirect_penalty
                    group_ends = True
                    branches += 1
                elif vkind == 4:  # direct unconditional branch
                    complete = ready + alu_latency
                    if outcomes is None:
                        confidence_update(pc, predictor.history, True, True)
                    if on_branch_decode is not None:
                        on_branch_decode(pc, True, taken_target, now)
                    group_ends = True
                    branches += 1
                else:  # mul / alu / nop / halt
                    if vkind == 5:
                        complete = ready + mul_latency
                    else:
                        complete = ready + alu_latency
                    if rd >= 0:
                        reg_ready[rd] = complete
                rob_append(complete)
                if on_commit is not None:
                    on_commit(instr, ea, taken, next_pc, regs, complete)
                # ---- end dispatch

                if 2 <= vkind <= 4:
                    branches_in_group += 1
                if group_ends:
                    break
        if fetched:
            fetch_cycles += 1
            if branches_in_group:
                bucket = branches_in_group if branches_in_group < 4 else 4
                fetch_branch_hist[bucket] += 1
            now += 1
            continue

        # idle: jump to the next event
        if now < fetch_stall_until:
            flush_stall_cycles += 1
        elif len(rob) - head >= rob_cap:
            rob_full_stalls += 1
        candidates = []
        if head < len(rob):
            candidates.append(rob[head])
        if now < fetch_stall_until:
            candidates.append(fetch_stall_until)
        if prefetcher is not None and len(prefetcher.queue):
            now += 1  # keep draining at full rate
            continue
        if not candidates:
            now += 1
            continue
        next_event = min(candidates)
        now = now + 1 if next_event <= now else next_event

    # write the locals back into the core / replay source
    core.cycle = now
    core._rob_head = head
    core.fetch_stall_until = fetch_stall_until
    core._fetch_block = fetch_block
    core.retired = retired
    core.done = True
    core.cond_branches = cond_branches
    core.branches = branches
    core.mispredicts = mispredicts
    core.fetch_cycles = fetch_cycles
    core.rob_full_stalls = rob_full_stalls
    core.flush_stall_cycles = flush_stall_cycles
    machine.seek(pos)
    return now
