"""Content-addressed trace persistence, replay-mode knob, memos, counters.

Traces live inside the experiment result cache under their own kind::

    <cache_dir>/ftrace/<digest[:2]>/ftrace-<digest[:16]>.bin

where the digest covers ``[TRACE_VERSION, "ftrace", meta]`` and *meta*
is the config-independent identity ``(benchmark, variant, steps,
program_len)`` -- every sweep cell over the same workload and budget
shares one trace file, and the serve coalescer shares it across jobs
for free.  A loaded blob is fully re-verified by
:func:`~repro.trace.format.decode_trace`; anything suspicious is
discarded (with the same remove-if-unchanged guard the result cache
uses) and re-recorded -- a trace is never trusted.

Process-local LRU memos cache decoded traces, their fused-loop views
and the per-predictor branch-outcome pre-passes, so a sweep iterating
prefetchers over one benchmark decodes and pre-processes each trace
once.  ``replay_counters`` tracks how executions were served
(``recorded``/``replayed``/``lockstep``/``fallback``); the CI smoke job
asserts a warmed store serves a sweep with zero functional executions,
and the serve ``statz`` endpoint republishes them.
"""

import hashlib
import json
import os
from collections import OrderedDict

from repro.cpu.functional import write_regs_of
from repro.obs.io import (
    atomic_write_bytes,
    file_signature,
    remove_if_unchanged,
)
from repro.trace.format import TRACE_VERSION, TraceError, decode_trace
from repro.trace.record import record_trace, trace_meta

TRACE_KIND = "ftrace"
TRACE_REPLAY_ENV = "REPRO_TRACE_REPLAY"
_SHARD_CHARS = 2

# how this process's executions were served (see module docstring)
replay_counters = {
    "recorded": 0,   # traces recorded (functional executions)
    "replayed": 0,   # runs timed off a replayed trace
    "lockstep": 0,   # runs executed lockstep (replay off or refused)
    "fallback": 0,   # stored traces rejected on load (re-recorded)
}


def reset_counters():
    for key in replay_counters:
        replay_counters[key] = 0


def replay_mode():
    """Parse ``REPRO_TRACE_REPLAY``: ``off`` (default), ``auto``, ``on``.

    ``auto`` records on the first miss and replays thereafter, falling
    back to lockstep execution silently whenever a replay source cannot
    be built; ``on`` raises instead of falling back (for tests and CI
    that must know replay actually happened).
    """
    raw = os.environ.get(TRACE_REPLAY_ENV, "off").strip().lower()
    if raw in ("", "off", "0", "no", "false"):
        return "off"
    if raw in ("auto", "on"):
        return raw
    raise ValueError(
        "%s must be one of off/auto/on, got %r" % (TRACE_REPLAY_ENV, raw)
    )


def trace_digest(meta):
    """Content digest keying a trace (mirrors the result-cache formula,
    but versioned by the trace format, not the result-cache version)."""
    public = {key: value for key, value in meta.items()
              if not key.startswith("_")}
    return hashlib.sha1(
        json.dumps([TRACE_VERSION, TRACE_KIND, public],
                   sort_keys=True).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# process-local LRU memos

_TRACE_MEMO = OrderedDict()    # digest -> TraceData
_VIEW_MEMO = OrderedDict()     # digest -> fused-loop view
_OUTCOME_MEMO = OrderedDict()  # (digest, predictor identity) -> outcomes
_TRACE_MEMO_CAP = 4
_VIEW_MEMO_CAP = 4
_OUTCOME_MEMO_CAP = 8


def _memo_get(memo, key):
    value = memo.get(key)
    if value is not None:
        memo.move_to_end(key)
    return value


def _memo_put(memo, key, value, cap):
    memo[key] = value
    memo.move_to_end(key)
    while len(memo) > cap:
        memo.popitem(last=False)


def clear_memos():
    """Drop every process-local memo (tests; also frees the memory)."""
    _TRACE_MEMO.clear()
    _VIEW_MEMO.clear()
    _OUTCOME_MEMO.clear()


def view_for(workload, trace):
    """Fused-loop view for *trace*, memoised per trace digest."""
    key = trace.digest or id(trace)
    view = _memo_get(_VIEW_MEMO, key)
    if view is None:
        from repro.trace.engine import build_view
        view = build_view(workload, trace)
        _memo_put(_VIEW_MEMO, key, view, _VIEW_MEMO_CAP)
    return view


def outcomes_for(trace, config, view):
    """Pre-computed branch outcomes for (trace, predictor config).

    Memoised on the predictor-relevant configuration identity so every
    sweep cell sharing a predictor setup shares one pre-pass.
    """
    predictor_key = (config.branch_predictor, config.bp_scale)
    key = (trace.digest or id(trace), predictor_key)
    outcomes = _memo_get(_OUTCOME_MEMO, key)
    if outcomes is None:
        from repro.branch.btb import BranchTargetBuffer
        from repro.trace.engine import branch_outcomes
        outcomes = branch_outcomes(
            view, config.make_predictor(), BranchTargetBuffer()
        )
        _memo_put(_OUTCOME_MEMO, key, outcomes, _OUTCOME_MEMO_CAP)
    return outcomes


# ----------------------------------------------------------------------


class TraceStore:
    """Content-addressed functional-trace storage under a cache dir.

    :param cache_dir: the experiment runner's cache directory; None
        keeps everything in the process-local memo only.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir

    def path_for(self, digest):
        if not self.cache_dir:
            return None
        return os.path.join(
            self.cache_dir,
            TRACE_KIND,
            digest[:_SHARD_CHARS],
            "%s-%s.bin" % (TRACE_KIND, digest[:16]),
        )

    def load(self, workload, steps, variant=0):
        """Fetch a trace from the memo or disk; None on miss.

        A blob that fails any verification (magic, version, envelope,
        digests, metadata binding) is counted as a ``fallback``,
        discarded with the remove-if-unchanged guard, and reported as a
        miss so the caller re-records.
        """
        meta = trace_meta(workload, steps, variant)
        digest = trace_digest(meta)
        trace = _memo_get(_TRACE_MEMO, digest)
        if trace is not None:
            return trace
        path = self.path_for(digest)
        if path is None:
            return None
        try:
            signature = file_signature(os.stat(path))
        except OSError:
            signature = None
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            trace = decode_trace(blob, write_regs_of(workload.program),
                                 expect_meta=meta)
        except TraceError:
            replay_counters["fallback"] += 1
            remove_if_unchanged(path, signature)
            return None
        trace.digest = digest
        _memo_put(_TRACE_MEMO, digest, trace, _TRACE_MEMO_CAP)
        return trace

    def record(self, workload, steps, variant=0):
        """Record a fresh trace, persist it, and memoise it."""
        blob, trace = record_trace(workload, steps, variant)
        trace.digest = trace_digest(trace.meta)
        replay_counters["recorded"] += 1
        path = self.path_for(trace.digest)
        if path is not None:
            atomic_write_bytes(path, blob)
        _memo_put(_TRACE_MEMO, trace.digest, trace, _TRACE_MEMO_CAP)
        return trace

    def get_or_record(self, workload, steps, variant=0):
        trace = self.load(workload, steps, variant)
        if trace is None:
            trace = self.record(workload, steps, variant)
        return trace

    def stats(self):
        """Entry count and byte total of the on-disk trace store."""
        entries = 0
        total_bytes = 0
        root = os.path.join(self.cache_dir, TRACE_KIND) \
            if self.cache_dir else None
        if root and os.path.isdir(root):
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in filenames:
                    if not name.endswith(".bin"):
                        continue
                    try:
                        total_bytes += os.path.getsize(
                            os.path.join(dirpath, name))
                        entries += 1
                    except OSError:
                        continue
        return {"entries": entries, "bytes": total_bytes}


def replay_source_for(workload, steps, variant=0, cache_dir=None):
    """Build a :class:`~repro.trace.replay.TraceReplaySource`, or None.

    Honors ``REPRO_TRACE_REPLAY``: returns None in ``off`` mode; in
    ``auto`` a failure to obtain a trace degrades silently to lockstep
    (None); in ``on`` it propagates.  The caller is responsible for
    bumping ``replay_counters["replayed"]``/``["lockstep"]`` per
    execution served.
    """
    mode = replay_mode()
    if mode == "off":
        return None
    store = TraceStore(cache_dir)
    try:
        trace = store.get_or_record(workload, steps, variant)
        from repro.trace.replay import TraceReplaySource
        return TraceReplaySource(workload, trace)
    except Exception:
        if mode == "on":
            raise
        return None
