"""Functional-trace substrate: record once, re-time many (DESIGN.md §9).

The simulator's functional behaviour for a given ``(benchmark, variant,
steps)`` triple is fully deterministic and *config-independent* -- every
sweep cell that varies the prefetcher, predictor or hierarchy re-executes
the identical architectural instruction stream just to re-time it.  This
package splits the engine into **record** and **replay**:

* :mod:`repro.trace.format` -- a compact varint/delta binary encoding of
  the committed-instruction stream (branch outcomes + targets, load/store
  effective addresses, register write-back values, basic-block
  transitions), with a versioned, integrity-enveloped header and an
  architectural-state trailer;
* :mod:`repro.trace.record` -- records a trace by instrumenting the
  :class:`~repro.cpu.functional.Machine`;
* :mod:`repro.trace.replay` -- :class:`TraceReplaySource`, a drop-in
  machine replacement that feeds the timing model from a decoded trace
  (and transparently *live-continues* on a real machine when the trace is
  exhausted, which CMP runs rely on);
* :mod:`repro.trace.engine` -- a fused, trace-specialised timing loop
  whose results are byte-identical to lockstep execution;
* :mod:`repro.trace.store` -- content-addressed persistence inside the
  result cache (``<cache_dir>/ftrace/``) plus the process-local decode
  memos and the record/replay counters.

Replay is governed by the ``REPRO_TRACE_REPLAY`` environment knob
(``off`` default, ``auto`` records on first miss and replays thereafter,
``on`` additionally refuses to fall back silently); lockstep execution is
retained as the differential oracle -- ``tests/test_trace_replay.py``
and the sanitizer's full mode cross-validate the two.
"""

from repro.trace.format import TraceData, TraceError, decode_trace, encode_trace
from repro.trace.record import record_trace
from repro.trace.replay import TraceReplaySource
from repro.trace.store import TraceStore, replay_counters, replay_mode

__all__ = [
    "TraceData",
    "TraceError",
    "TraceReplaySource",
    "TraceStore",
    "decode_trace",
    "encode_trace",
    "record_trace",
    "replay_counters",
    "replay_mode",
]
