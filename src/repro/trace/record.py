"""Record a functional trace by driving :class:`~repro.cpu.functional.Machine`.

Recording is the *once* half of record-once / re-time-many: it runs the
architectural interpreter for exactly ``steps`` dynamic instructions --
the same count a timing run dispatches for that budget -- capturing per
step the static instruction index, the branch outcome, the effective
address and the register write-back value.  Everything a timing model
ever reads from the machine (``instr``/``taken``/``ea`` from ``step()``,
``pc``, ``regs``) is reconstructible from those four fields plus the
static program, so replay is exact by construction; the differential
oracle in :mod:`repro.sanitize` and ``tests/test_trace_replay.py``
enforces it anyway.

The trailer captures the architectural state *after* the last recorded
step (registers raw, memory as a delta against the workload's initial
image) so replay can hand over to a live machine when a caller steps
past the recorded window -- the CMP scheduler's keep-running overshoot
does this on every mix run.
"""

from repro.cpu.functional import (
    HaltError,
    Machine,
    memory_delta,
    write_regs_of,
)
from repro.trace.format import TraceData, encode_trace


def trace_meta(workload, steps, variant=0):
    """The identity metadata a trace is bound to (and keyed by).

    Deliberately config-independent: the functional stream depends only
    on the workload content (benchmark + variant) and the dynamic
    instruction count, never on predictors, prefetchers or the memory
    hierarchy -- that independence is what lets one recording feed every
    sweep cell.
    """
    return {
        "benchmark": workload.name,
        "variant": variant,
        "steps": steps,
        "program_len": len(workload.program.instrs),
    }


def record_trace(workload, steps, variant=0):
    """Execute *steps* instructions of *workload* and capture the trace.

    Returns ``(blob, trace)``: the serialised binary form (for the
    content-addressed store) and the in-memory :class:`TraceData` (so
    the recording process can replay without a decode round-trip).
    """
    machine = Machine(workload.program, dict(workload.memory))
    reg_of = write_regs_of(workload.program)
    records = []
    append = records.append
    step = machine.step
    regs = machine.regs
    for _ in range(steps):
        index = machine.index
        try:
            _instr, taken, ea = step()
        except HaltError:  # pragma: no cover - workload runs restart
            break
        rd = reg_of[index]
        append((index, taken, ea, regs[rd] if rd >= 0 else None))
    final_state = {
        "regs": list(machine.regs),
        "memory_delta": memory_delta(machine, workload.memory),
        "index": machine.index,
        "halted": machine.halted,
        "instret": machine.instret,
        "restarts": machine.restarts,
    }
    meta = trace_meta(workload, len(records), variant)
    meta["_reg_of"] = reg_of
    blob = encode_trace(meta, records, final_state)
    del meta["_reg_of"]
    trace = TraceData(meta, records, final_state)
    return blob, trace
