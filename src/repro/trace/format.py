"""Binary functional-trace format (``RFTR``, version 1).

Layout::

    b"RFTR"                      4-byte magic
    version                      1 byte
    varint header_len            | JSON header, wrapped in the standard
    header bytes                 | {"v","sha","data"} integrity envelope
    body bytes                   per-step varint/delta records
    varint trailer_len           | JSON architectural-state trailer
    trailer bytes                |

The header payload binds the trace to its workload identity
(``benchmark``/``variant``/``steps``/``program_len``) and carries the
byte lengths and SHA-1 digests of the body and trailer, so *any*
truncation, corruption or version skew is detected on decode and
surfaced as :class:`TraceError` -- a trace is never trusted blindly.
The envelope itself is the shared implementation from
:mod:`repro.resilience.envelope`.

Per-step record encoding (execution order)::

    flags byte:  bit0 taken   bit1 has_ea   bit2 has_value   bit3 jump
    [jump]       zigzag varint of (index - (prev_index + 1))
    [has_ea]     zigzag varint of (ea - prev_ea)
    [has_value]  zigzag varint of (value - prev value of that register)

``index`` is the *static* instruction index -- sequential flow costs one
byte per step; only taken branches (and HALT restarts) spend a jump
delta.  ``value`` is the raw (unmasked -- possibly negative or wider
than 64 bits, see :meth:`repro.cpu.functional.Machine.snapshot`) value
written to the destination register, delta-encoded against that same
register's previous value so induction variables compress to one or two
bytes.  The destination register number itself is *not* stored: it is a
static property of the instruction, recovered from the program at decode
time.

The trailer stores the architectural state after the last recorded step
-- registers, the memory image as a delta against the workload's initial
image, the next instruction index and the retirement counters -- which
is what lets :class:`~repro.trace.replay.TraceReplaySource` hand over to
a live :class:`~repro.cpu.functional.Machine` when a caller (the CMP
scheduler's keep-running overshoot) steps past the recorded window.
"""

import hashlib
import json

from repro.resilience import CacheCorruption
from repro.resilience.envelope import unwrap_envelope, wrap_envelope

TRACE_MAGIC = b"RFTR"
TRACE_VERSION = 1


class TraceError(Exception):
    """A trace blob cannot be trusted (truncated/corrupt/version skew)."""


class TraceData(object):
    """A decoded trace: metadata, per-step records, final state.

    ``records`` is a list of ``(index, taken, ea, value)`` tuples in
    execution order (``ea``/``value`` are None when the step has no
    memory access / register write); ``final_state`` is the trailer
    dict.  ``digest`` is filled in by the store for memoisation.
    """

    __slots__ = ("meta", "records", "final_state", "digest")

    def __init__(self, meta, records, final_state, digest=None):
        self.meta = meta
        self.records = records
        self.final_state = final_state
        self.digest = digest


def _bytes_sha(blob):
    return hashlib.sha1(blob).hexdigest()[:16]


def _encode_varint(value, out):
    """Append an unsigned LEB128 varint to bytearray *out*."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _zigzag(value):
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value):
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def encode_trace(meta, records, final_state):
    """Serialise a trace; returns the complete binary blob.

    :param meta: JSON-safe identity dict (benchmark/variant/steps/...).
    :param records: iterable of ``(index, taken, ea, value)`` tuples.
    :param final_state: JSON-safe architectural trailer.
    """
    body = bytearray()
    prev_index = -1
    prev_ea = 0
    prev_value = [0] * 32
    reg_of = meta.get("_reg_of")  # internal: per-step rd, supplied by record
    steps = 0
    for index, taken, ea, value in records:
        flags = 0
        if taken:
            flags |= 1
        if ea is not None:
            flags |= 2
        if value is not None:
            flags |= 4
        jump = index - (prev_index + 1)
        if jump:
            flags |= 8
        body.append(flags)
        if jump:
            _encode_varint(_zigzag(jump), body)
        if ea is not None:
            _encode_varint(_zigzag(ea - prev_ea), body)
            prev_ea = ea
        if value is not None:
            reg = reg_of[index]
            _encode_varint(_zigzag(value - prev_value[reg]), body)
            prev_value[reg] = value
        prev_index = index
        steps += 1
    body = bytes(body)
    trailer = json.dumps(final_state, sort_keys=True).encode()
    header_payload = {
        "meta": {key: value for key, value in meta.items()
                 if not key.startswith("_")},
        "steps": steps,
        "body_len": len(body),
        "body_sha": _bytes_sha(body),
        "trailer_len": len(trailer),
        "trailer_sha": _bytes_sha(trailer),
    }
    header = json.dumps(
        wrap_envelope(header_payload, TRACE_VERSION), sort_keys=True
    ).encode()
    out = bytearray(TRACE_MAGIC)
    out.append(TRACE_VERSION)
    _encode_varint(len(header), out)
    out += header
    out += body
    _encode_varint(len(trailer), out)
    out += trailer
    return bytes(out)


def _decode_varint(blob, pos, limit):
    result = 0
    shift = 0
    while True:
        if pos >= limit:
            raise TraceError("truncated varint at offset %d" % pos)
        byte = blob[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def decode_trace(blob, reg_of, expect_meta=None):
    """Parse and verify a trace blob; returns :class:`TraceData`.

    :param reg_of: per-static-instruction destination register (from
        :func:`repro.trace.record.write_regs_of`) -- needed to
        reconstruct absolute register values from per-register deltas.
    :param expect_meta: when given, every key present must match the
        stored metadata (workload identity binding).
    :raises TraceError: wrong magic/version, truncation, digest
        mismatch, or metadata disagreement -- the caller must fall back
        to recording.
    """
    if len(blob) < len(TRACE_MAGIC) + 1:
        raise TraceError("blob shorter than the trace preamble")
    if blob[: len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise TraceError("bad magic %r" % blob[: len(TRACE_MAGIC)])
    version = blob[len(TRACE_MAGIC)]
    if version != TRACE_VERSION:
        raise TraceError(
            "trace version %d (expected %d)" % (version, TRACE_VERSION)
        )
    pos = len(TRACE_MAGIC) + 1
    header_len, pos = _decode_varint(blob, pos, len(blob))
    if pos + header_len > len(blob):
        raise TraceError("truncated header")
    try:
        header_obj = json.loads(blob[pos:pos + header_len].decode())
        header = unwrap_envelope(header_obj, TRACE_VERSION)
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceError("unreadable header: %s" % exc)
    except CacheCorruption as exc:
        raise TraceError("header failed integrity verification: %s" % exc)
    pos += header_len
    meta = header.get("meta", {})
    if expect_meta:
        for key, value in expect_meta.items():
            if meta.get(key) != value:
                raise TraceError(
                    "trace metadata mismatch on %r: stored %r, expected %r"
                    % (key, meta.get(key), value)
                )
    body_len = header["body_len"]
    if pos + body_len > len(blob):
        raise TraceError("truncated body (%d of %d bytes)"
                         % (len(blob) - pos, body_len))
    body = blob[pos:pos + body_len]
    if _bytes_sha(body) != header["body_sha"]:
        raise TraceError("body failed digest verification")
    pos += body_len
    trailer_len, pos = _decode_varint(blob, pos, len(blob))
    if trailer_len != header["trailer_len"] or pos + trailer_len > len(blob):
        raise TraceError("truncated trailer")
    trailer_bytes = blob[pos:pos + trailer_len]
    if _bytes_sha(trailer_bytes) != header["trailer_sha"]:
        raise TraceError("trailer failed digest verification")
    try:
        final_state = json.loads(trailer_bytes.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceError("unreadable trailer: %s" % exc)

    records = _decode_body(body, header["steps"], reg_of)
    return TraceData(meta, records, final_state)


def _decode_body(body, steps, reg_of):
    records = []
    append = records.append
    decode_varint = _decode_varint
    unzig = _unzigzag
    limit = len(body)
    pos = 0
    prev_index = -1
    prev_ea = 0
    prev_value = [0] * 32
    program_len = len(reg_of)
    for _ in range(steps):
        if pos >= limit:
            raise TraceError("body ended after %d of %d steps"
                             % (len(records), steps))
        flags = body[pos]
        pos += 1
        index = prev_index + 1
        if flags & 8:
            delta, pos = decode_varint(body, pos, limit)
            index += unzig(delta)
        if not 0 <= index < program_len:
            raise TraceError("step %d: instruction index %d outside "
                             "program of %d" % (len(records), index,
                                                program_len))
        ea = None
        if flags & 2:
            delta, pos = decode_varint(body, pos, limit)
            ea = prev_ea + unzig(delta)
            prev_ea = ea
        value = None
        if flags & 4:
            reg = reg_of[index]
            if reg < 0:
                raise TraceError("step %d: value for non-writing "
                                 "instruction %d" % (len(records), index))
            delta, pos = decode_varint(body, pos, limit)
            value = prev_value[reg] + unzig(delta)
            prev_value[reg] = value
        append((index, bool(flags & 1), ea, value))
        prev_index = index
    if pos != limit:
        raise TraceError("%d trailing bytes after the last record"
                         % (limit - pos))
    return records
