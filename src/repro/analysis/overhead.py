"""Hardware storage accounting (Table I).

Bit budgets follow the paper's Table I fields:

=====================================  =======  ========
B-Fetch component                      entries  size (KB)
=====================================  =======  ========
Branch Trace Cache                     256      2.06
Memory History Table                   128      4.50
Alternate Register File                32       0.156
Per-Load Prefetch Filter               2048     2.25
Additional cache bits                  --       1.37
Prefetch Queue                         100      0.51
Path Confidence Estimator              2048     2.00
TOTAL                                           12.84
SMS (AGT 64 + PHT 16K)                          36.57
=====================================  =======  ========

Per-entry bit widths are reconstructed from Fig. 5/Fig. 6 and the table's
totals; see EXPERIMENTS.md for the two fields where the paper's packing
is under-specified (BrTC entry layout, SMS PHT compression).
"""

_KB = 8 * 1024  # bits per KB

# per-entry bit widths reconstructed from the paper
BRTC_ENTRY_BITS = 66          # 2.06KB / 256 entries
MHT_ENTRY_BITS = 32 + 3 * 85  # Fig. 6: tag + 3 register-history slots
ARF_ENTRY_BITS = 40           # 32-bit value + 8-bit sequence
FILTER_COUNTER_BITS = 3       # 3 tables x entries x 3 bits
CACHE_LINE_EXTRA_BITS = 11    # 10-bit load PC hash + 1 useful bit
PREFETCH_QUEUE_ENTRY_BITS = 42
PATH_CONF_ENTRY_BITS = 8      # 2KB / 2048 entries
SMS_AGT_ENTRY_BITS = 73       # 0.57KB / 64 entries
SMS_PHT_ENTRY_BITS = 18       # 36KB / 16K entries (compressed pattern)


def bfetch_overhead_kb(brtc_entries=256, mht_entries=128, arf_entries=32,
                       filter_entries=2048, filter_tables=3,
                       l1d_size=64 * 1024, block_bytes=64,
                       queue_entries=100, path_conf_entries=2048):
    """Component-wise B-Fetch storage in KB, keyed like Table I."""
    lines = l1d_size // block_bytes
    components = {
        "Branch Trace Cache": brtc_entries * BRTC_ENTRY_BITS / _KB,
        "Memory History Table": mht_entries * MHT_ENTRY_BITS / _KB,
        "Alternate Register File": arf_entries * ARF_ENTRY_BITS / _KB,
        "Per-Load Prefetch Filter":
            filter_tables * filter_entries * FILTER_COUNTER_BITS / _KB,
        "Additional Cache bits": lines * CACHE_LINE_EXTRA_BITS / _KB,
        "Prefetch Queue": queue_entries * PREFETCH_QUEUE_ENTRY_BITS / _KB,
        "Path Confidence Estimator":
            path_conf_entries * PATH_CONF_ENTRY_BITS / _KB,
    }
    components["TOTAL"] = sum(components.values())
    return components


def sms_overhead_kb(agt_entries=64, pht_entries=16 * 1024):
    """Component-wise SMS storage in KB (paper's practical config)."""
    components = {
        "Active Generation Table": agt_entries * SMS_AGT_ENTRY_BITS / _KB,
        "Pattern History Table": pht_entries * SMS_PHT_ENTRY_BITS / _KB,
    }
    components["TOTAL"] = sum(components.values())
    return components


def storage_saving_vs_sms():
    """The headline claim: B-Fetch needs ~65% less storage than SMS."""
    bf = bfetch_overhead_kb()["TOTAL"]
    sms = sms_overhead_kb()["TOTAL"]
    return 1.0 - bf / sms


def overhead_table():
    """Render Table I as ``(rows, total_bf, total_sms)``."""
    bf = bfetch_overhead_kb()
    sms = sms_overhead_kb()
    entries = {
        "Branch Trace Cache": 256,
        "Memory History Table": 128,
        "Alternate Register File": 32,
        "Per-Load Prefetch Filter": 2048,
        "Additional Cache bits": None,
        "Prefetch Queue": 100,
        "Path Confidence Estimator": 2048,
        "Active Generation Table": 64,
        "Pattern History Table": 16 * 1024,
    }
    rows = []
    for name, size in bf.items():
        if name == "TOTAL":
            continue
        rows.append(("B-Fetch", name, entries.get(name), size))
    rows.append(("B-Fetch", "TOTAL SIZE", None, bf["TOTAL"]))
    for name, size in sms.items():
        if name == "TOTAL":
            continue
        rows.append(("SMS", name, entries.get(name), size))
    rows.append(("SMS", "TOTAL SIZE", None, sms["TOTAL"]))
    return rows, bf["TOTAL"], sms["TOTAL"]
