"""Consolidated experiment report generation.

Collects the archived experiment renders (``benchmarks/results/*.txt``)
into a single markdown report, with a required-experiment checklist so
a partial benchmark run is visible at a glance.  Used by maintainers to
refresh the measured side of EXPERIMENTS.md:

    python -c "from repro.analysis.report import write_report; \\
               write_report('benchmarks/results', 'REPORT.md')"
"""

import os

# experiment id -> (archive stem, one-line description)
EXPERIMENT_INDEX = [
    ("Fig. 1", "fig01_perfect", "Stride/SMS/Perfect limit study"),
    ("Fig. 3", "fig03_variation", "register vs EA variation CDFs"),
    ("Fig. 7", "fig07_branch_fetch", "branches per fetch cycle"),
    ("Fig. 8", "fig08_single", "single-threaded speedups"),
    ("Fig. 9", "fig09_mix2", "mix-2 weighted speedups"),
    ("Fig. 10", "fig10_mix4", "mix-4 weighted speedups"),
    ("Fig. 11", "fig11_useful", "useful vs useless prefetches"),
    ("Fig. 12", "fig12_confidence", "path-confidence threshold sweep"),
    ("Fig. 13", "fig13_bp_size", "branch predictor size sweep"),
    ("Fig. 14", "fig14_width", "pipeline width sweep"),
    ("Fig. 15", "fig15_storage", "B-Fetch storage sweep"),
    ("Table I", "table1_overhead", "hardware storage overhead"),
    ("Table II", "table2_config", "baseline configuration"),
    ("Ext: ablations", "ablation_tango", "EA-history vs register-state"),
    ("Ext: filter", "ablation_filter", "per-load filter ablation"),
    ("Ext: loops", "ablation_loop", "loop detection ablation"),
    ("Ext: ARF", "ablation_arf", "ARF sampling ablation"),
    ("Ext: mix-8", "mix8_preliminary", "8-application mixes"),
    ("Ext: heavy", "heavyweight_class", "heavy-weight prefetcher class"),
    ("Ext: energy", "energy_overhead", "dynamic energy comparison"),
    ("Ext: LLC", "llc_policy", "LLC policy under prefetching"),
    ("Ext: perceptron", "futurework_predictor", "future-work predictor"),
    ("Ext: B-Fetch-I", "futurework_ifetch", "instruction prefetching"),
    ("Ext: seeds", "variability", "across-seed robustness"),
]


def collect_results(results_dir):
    """Return ``(present, missing)`` lists of experiment-index entries."""
    present = []
    missing = []
    for entry in EXPERIMENT_INDEX:
        path = os.path.join(results_dir, entry[1] + ".txt")
        (present if os.path.exists(path) else missing).append(entry)
    return present, missing


def build_report(results_dir):
    """Render the consolidated markdown report as a string."""
    present, missing = collect_results(results_dir)
    lines = ["# Reproduction report", ""]
    lines.append("%d/%d experiments present in `%s`."
                 % (len(present), len(EXPERIMENT_INDEX), results_dir))
    if missing:
        lines.append("")
        lines.append("Missing: " + ", ".join(e[0] for e in missing))
    for label, stem, description in present:
        path = os.path.join(results_dir, stem + ".txt")
        with open(path) as handle:
            body = handle.read().rstrip()
        lines.append("")
        lines.append("## %s — %s" % (label, description))
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
    return "\n".join(lines) + "\n"


def write_report(results_dir, out_path):
    """Write the consolidated report; returns the number of experiments
    included."""
    report = build_report(results_dir)
    with open(out_path, "w") as handle:
        handle.write(report)
    present, _ = collect_results(results_dir)
    return len(present)
