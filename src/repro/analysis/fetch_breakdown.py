"""Branches-fetched-per-cycle breakdown (Fig. 7).

The paper argues the main branch predictor has spare prediction
bandwidth for B-Fetch because fetch groups almost never contain more
than two branches.  The timing core tracks, for every cycle that fetched
at least one branch, how many branches that group held; this module
aggregates those histograms across runs.
"""


def fetch_branch_breakdown(results):
    """Aggregate per-run fetch-branch histograms into fractions.

    :param results: iterable of :class:`~repro.sim.RunResult` (each has a
        ``fetch_branch_hist`` of counts indexed 1..4).
    :returns: dict ``{1: frac, 2: frac, 3: frac, 4: frac}`` over cycles
        that fetched at least one branch, plus ``"cumulative_2"`` -- the
        paper's ">=99.95% of fetch cycles hold at most two branches".
    """
    totals = [0] * 5
    for result in results:
        hist = result.data["fetch_branch_hist"]
        for count in range(1, 5):
            totals[count] += hist[count]
    branch_cycles = sum(totals[1:])
    if not branch_cycles:
        return {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0, "cumulative_2": 1.0}
    breakdown = {n: totals[n] / branch_cycles for n in range(1, 5)}
    breakdown["cumulative_2"] = breakdown[1] + breakdown[2]
    return breakdown
