"""Analyses behind the paper's motivation/cost figures.

* :mod:`repro.analysis.variation` -- register-content vs effective-address
  variation CDFs across basic blocks (Fig. 3a/3b).
* :mod:`repro.analysis.overhead` -- hardware storage accounting
  (Table I).
* :mod:`repro.analysis.fetch_breakdown` -- branches-per-fetch-cycle
  histogram (Fig. 7).
* :mod:`repro.analysis.reporting` -- text rendering of tables/series.
"""

from repro.analysis.variation import VariationCDF, collect_variation
from repro.analysis.overhead import bfetch_overhead_kb, overhead_table, sms_overhead_kb
from repro.analysis.fetch_breakdown import fetch_branch_breakdown
from repro.analysis.energy import EnergyModel, energy_comparison, prefetcher_energy
from repro.analysis.reporting import render_cdf, render_series, render_table

__all__ = [
    "collect_variation",
    "VariationCDF",
    "overhead_table",
    "bfetch_overhead_kb",
    "sms_overhead_kb",
    "fetch_branch_breakdown",
    "EnergyModel",
    "prefetcher_energy",
    "energy_comparison",
    "render_table",
    "render_series",
    "render_cdf",
]
