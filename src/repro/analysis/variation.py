"""Register vs effective-address variation across basic blocks (Fig. 3).

The paper motivates B-Fetch with two cumulative distributions measured
over dynamic execution:

* **Fig. 3a** -- how much a register's *content* changes across a window
  of K executed basic blocks (K = 1, 3, 12), in units of 64B cache
  blocks.  Registers used for address generation barely move: ~92% stay
  within one block over 1 BB, ~82% over 12 BB.
* **Fig. 3b** -- how much a static load's *effective address* changes
  over the same windows.  EAs drift fast (loops stride them along), so
  predictors anchored on past EAs go stale, while predictors anchored on
  current register values (B-Fetch) do not.

``collect_variation`` replays a workload functionally, samples every
address-base register at each basic-block boundary, and records per-load
EA histories tagged with the BB sequence number.
"""

from repro.cpu.functional import Machine

_BLOCK = 64


class VariationCDF:
    """Accumulates deltas and renders a CDF over cache-block bins."""

    def __init__(self, max_blocks=33):
        self.max_blocks = max_blocks
        self.counts = [0] * (max_blocks + 1)
        self.total = 0

    def add(self, delta_bytes):
        blocks = abs(delta_bytes) // _BLOCK
        if blocks > self.max_blocks:
            blocks = self.max_blocks
        self.counts[blocks] += 1
        self.total += 1

    def cumulative(self):
        """Return the CDF as a list: entry i = P(delta <= i blocks)."""
        if not self.total:
            return [0.0] * (self.max_blocks + 1)
        acc = 0
        result = []
        for count in self.counts:
            acc += count
            result.append(acc / self.total)
        return result

    def fraction_within(self, blocks):
        """P(delta <= blocks) -- e.g. Fig. 3a's 92% within 1 block at 1BB."""
        return self.cumulative()[min(blocks, self.max_blocks)]


def collect_variation(workload, instructions=100_000, windows=(1, 3, 12)):
    """Measure register and EA variation for *workload*.

    Returns ``(reg_cdfs, ea_cdfs)``: two dicts mapping window size (in
    basic blocks) to a :class:`VariationCDF`.

    Registers considered are those actually used as load bases (the
    quantity the MHT cares about).  EA variation compares each dynamic
    load against the next execution of the same static load at least K
    BBs later.
    """
    machine = Machine(workload.program, dict(workload.memory))
    reg_cdfs = {k: VariationCDF() for k in windows}
    ea_cdfs = {k: VariationCDF() for k in windows}
    max_window = max(windows)

    base_regs = sorted(
        {
            instr.ra
            for instr in workload.program.instrs
            if instr.is_load and instr.ra is not None
        }
    )
    # ring buffer of register snapshots at BB boundaries
    snapshots = []
    bb_seq = 0
    # per static load: list of (bb_seq, ea) awaiting future matches
    pending = {}

    for _ in range(instructions):
        instr, taken, ea = machine.step()
        if instr.is_load:
            history = pending.setdefault(instr.index, [])
            for past_seq, past_ea in list(history):
                age = bb_seq - past_seq
                done = True
                for window in windows:
                    if age >= window:
                        ea_cdfs[window].add(ea - past_ea)
                    else:
                        done = False
                if done:
                    history.remove((past_seq, past_ea))
            history.append((bb_seq, ea))
            if len(history) > 4:
                history.pop(0)
        if instr.is_branch:
            bb_seq += 1
            snapshot = [machine.regs[reg] for reg in base_regs]
            snapshots.append(snapshot)
            if len(snapshots) > max_window + 1:
                snapshots.pop(0)
            for window in windows:
                if len(snapshots) > window:
                    old = snapshots[-(window + 1)]
                    for position in range(len(base_regs)):
                        reg_cdfs[window].add(snapshot[position] - old[position])
    return reg_cdfs, ea_cdfs
