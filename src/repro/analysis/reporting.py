"""Plain-text rendering of the reproduced tables and figure series.

Every benchmark target prints its result through these helpers so the
``pytest benchmarks/`` output reads like the paper's tables: one labelled
row per benchmark/mix, one column per prefetcher/configuration.
"""


def render_table(title, rows, columns, fmt="%.3f", label_width=None):
    """Render ``rows = [(label, {col: value})]`` as an aligned table."""
    if label_width is None:
        label_width = max([len(r[0]) for r in rows] + [9])
    col_width = max([len(c) for c in columns] + [7])
    lines = ["== %s ==" % title]
    header = "".ljust(label_width) + "  " + "  ".join(
        c.rjust(col_width) for c in columns
    )
    lines.append(header)
    for label, values in rows:
        cells = []
        for column in columns:
            value = values.get(column)
            if value is None:
                cells.append("-".rjust(col_width))
            elif isinstance(value, str):
                cells.append(value.rjust(col_width))
            else:
                cells.append((fmt % value).rjust(col_width))
        lines.append(label.ljust(label_width) + "  " + "  ".join(cells))
    return "\n".join(lines)


def render_series(title, series, fmt="%.3f"):
    """Render ``series = [(x_label, value)]`` as two aligned columns."""
    lines = ["== %s ==" % title]
    width = max(len(str(x)) for x, _ in series)
    for x, value in series:
        lines.append("%s  %s" % (str(x).ljust(width), fmt % value))
    return "\n".join(lines)


def render_bars(title, series, width=48, fmt="%.2f"):
    """Render ``series = [(label, value)]`` as a horizontal bar chart,
    the closest a terminal gets to the paper's figures."""
    lines = ["== %s ==" % title]
    if not series:
        return "\n".join(lines)
    label_width = max(len(str(label)) for label, _ in series)
    peak = max(value for _, value in series)
    scale = (width / peak) if peak > 0 else 0.0
    for label, value in series:
        bar = "#" * max(0, int(round(value * scale)))
        lines.append("%s  %s %s" % (
            str(label).ljust(label_width), (fmt % value).rjust(7), bar
        ))
    return "\n".join(lines)


def render_cdf(title, cdfs, points=(0, 1, 2, 4, 8, 16, 32)):
    """Render {window: VariationCDF} at selected block-delta points."""
    lines = ["== %s ==" % title]
    header = "delta<=blocks".ljust(14) + "  " + "  ".join(
        ("%dBB" % window).rjust(7) for window in sorted(cdfs)
    )
    lines.append(header)
    for point in points:
        row = ("%d" % point).ljust(14)
        cells = []
        for window in sorted(cdfs):
            cells.append(("%.3f" % cdfs[window].fraction_within(point)).rjust(7))
        lines.append(row + "  " + "  ".join(cells))
    return "\n".join(lines)
