"""First-order prefetcher energy accounting.

The paper's case for B-Fetch is energy-driven: heavy-weight prefetchers
pay for megabytes of (off-chip) metadata and the traffic to shuttle it,
and runahead-style schemes keep the whole core executing, while B-Fetch
runs a tiny side pipeline.  The paper argues this qualitatively; this
module puts first-order numbers behind it so the claim is checkable.

Model: dynamic energy = sum over structures of (accesses x per-access
energy), where per-access energy scales with the square root of the
structure's capacity (a standard small-SRAM approximation, normalised to
1 pJ for a 1KB array), plus DRAM transfer energy for prefetch traffic.
Absolute joules are not the point -- *ratios between prefetchers on the
same run* are.
"""

import math

_DRAM_TRANSFER_PJ = 1500.0  # per 64B line, order-of-magnitude DDR3
_SRAM_BASE_PJ = 1.0         # per access of a 1KB array


def sram_access_energy_pj(size_kb):
    """Per-access energy of an SRAM array of *size_kb* KB."""
    if size_kb <= 0:
        return 0.0
    return _SRAM_BASE_PJ * math.sqrt(size_kb)


class EnergyModel:
    """Accumulates structure accesses into a dynamic-energy estimate."""

    def __init__(self):
        self.components = {}

    def add_structure(self, name, size_kb, accesses):
        """Account *accesses* to an SRAM structure of *size_kb* KB."""
        energy = accesses * sram_access_energy_pj(size_kb)
        self.components[name] = self.components.get(name, 0.0) + energy
        return energy

    def add_dram_transfers(self, name, transfers):
        """Account off-chip line transfers (prefetch or metadata)."""
        energy = transfers * _DRAM_TRANSFER_PJ
        self.components[name] = self.components.get(name, 0.0) + energy
        return energy

    @property
    def total_pj(self):
        return sum(self.components.values())


def prefetcher_energy(result, prefetcher_name, storage_bits, walks=None):
    """Estimate a prefetcher's dynamic energy for one run.

    :param result: the run's :class:`~repro.sim.RunResult`.
    :param storage_bits: the prefetcher's table budget (on-chip state).
    :param walks: lookahead walk count (B-Fetch); defaults to prefetch
        issue count for miss-driven designs.
    :returns: an :class:`EnergyModel`.
    """
    model = EnergyModel()
    stats = result.data["prefetch"]
    size_kb = storage_bits / 8192.0
    activations = walks if walks is not None else stats["issued"]
    # table lookups/updates: one per activation plus one per training event
    model.add_structure("%s tables" % prefetcher_name, size_kb,
                        activations + result.data["l1d"]["accesses"] // 8)
    # every issued prefetch that went off-chip costs a DRAM transfer
    model.add_dram_transfers("%s prefetch traffic" % prefetcher_name,
                             stats["issued"])
    # useless prefetches are pure waste; surface them separately
    model.add_dram_transfers("%s wasted traffic" % prefetcher_name,
                             stats["useless"])
    return model


def energy_comparison(results_with_storage):
    """Compare prefetchers' energy on the same workload set.

    :param results_with_storage: iterable of
        ``(name, results, storage_bits)`` where *results* is a list of
        RunResults for that prefetcher.
    :returns: dict name -> total pJ.
    """
    totals = {}
    for name, results, storage_bits in results_with_storage:
        total = 0.0
        for result in results:
            total += prefetcher_energy(result, name, storage_bits).total_pj
        totals[name] = total
    return totals
