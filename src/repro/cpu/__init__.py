"""CPU models: functional interpreter and the cycle-stepped O3 timing core."""

from repro.cpu.functional import HaltError, Machine
from repro.cpu.ooo import CoreConfig, OutOfOrderCore
from repro.cpu.trace import TraceReplay, capture_trace, save_trace

__all__ = [
    "Machine",
    "HaltError",
    "OutOfOrderCore",
    "CoreConfig",
    "TraceReplay",
    "capture_trace",
    "save_trace",
]
