"""Dynamic-trace capture and replay.

Simulator hygiene tooling: capture the architectural instruction stream
of a workload once, then replay it deterministically -- useful for
debugging prefetcher behaviour on a frozen stream, for diffing two
simulator versions, and for shipping regression traces.

The trace format is a compact text file, one record per dynamic
instruction::

    <static index> <taken:0|1> <ea|->

plus a header binding the trace to its program (name + instruction
count) so replays cannot be paired with the wrong workload.
"""

import io

from repro.cpu.functional import Machine

_HEADER = "#repro-trace v1"


def capture_trace(workload, instructions):
    """Run *workload* functionally and return the trace as a string."""
    machine = Machine(workload.program, dict(workload.memory))
    out = io.StringIO()
    out.write("%s program=%s instrs=%d\n"
              % (_HEADER, workload.name, len(workload.program)))
    for _ in range(instructions):
        instr, taken, ea = machine.step()
        out.write("%d %d %s\n" % (
            instr.index, 1 if taken else 0,
            "-" if ea is None else format(ea, "x"),
        ))
    return out.getvalue()


def save_trace(path, workload, instructions):
    """Capture and write a trace file; returns the record count."""
    text = capture_trace(workload, instructions)
    with open(path, "w") as handle:
        handle.write(text)
    return text.count("\n") - 1


class TraceReplay:
    """Replays a captured trace through the :class:`Machine` interface.

    Exposes the subset of the machine API the timing core uses
    (``step``, ``pc``, ``regs``), so a :class:`~repro.cpu.OutOfOrderCore`
    can be driven from a file instead of live execution.  Register values
    are not part of the trace; ``regs`` stays zero, which is sufficient
    for every prefetcher except B-Fetch's register-anchored speculation
    (replay is for miss-driven prefetcher debugging and A/B timing runs).
    """

    def __init__(self, program, text):
        lines = text.splitlines()
        if not lines or not lines[0].startswith(_HEADER):
            raise ValueError("not a repro trace file")
        header = dict(
            field.split("=") for field in lines[0].split()[2:]
        )
        if int(header["instrs"]) != len(program):
            raise ValueError(
                "trace was captured from a different program "
                "(%s static instrs vs %d)" % (header["instrs"], len(program))
            )
        self.program = program
        self.name = header["program"]
        self._records = lines[1:]
        self._position = 0
        self.regs = [0] * 32
        self.instret = 0
        self._next_index = 0

    @classmethod
    def load(cls, program, path):
        with open(path) as handle:
            return cls(program, handle.read())

    @property
    def pc(self):
        return self.program.pc_of(self._next_index)

    @property
    def exhausted(self):
        return self._position >= len(self._records)

    def step(self):
        """Return the next ``(instr, taken, ea)`` record."""
        if self.exhausted:
            raise StopIteration("trace exhausted")
        fields = self._records[self._position].split()
        self._position += 1
        index = int(fields[0])
        instr = self.program.instrs[index]
        taken = fields[1] == "1"
        ea = None if fields[2] == "-" else int(fields[2], 16)
        # derive the follow-on PC for the core's next_pc bookkeeping
        if self._position < len(self._records):
            self._next_index = int(self._records[self._position].split()[0])
        else:
            self._next_index = index
        self.instret += 1
        return instr, taken, ea
