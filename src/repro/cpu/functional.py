"""Functional (architectural) interpreter for the reproduction ISA.

The simulator is trace-driven: the :class:`Machine` executes the program in
architectural order and the timing model consumes the resulting dynamic
instruction stream.  This mirrors how gem5's O3 model is driven in the paper
at the fidelity level we need -- the timing core re-creates fetch, ROB,
operand-latency and flush behaviour on top of the architecturally-correct
stream.

The hot loop is a single ``step`` method with an ``if``-chain dispatch over
integer opcodes; at simulation scale this is ~3x faster than a dict of
per-opcode callables.
"""

from repro.isa import MASK64, ZERO_REG
from repro.isa.opcodes import Op

_SIGN_BIT = 1 << 63


def _to_signed(value):
    value &= MASK64
    return value - (1 << 64) if value & _SIGN_BIT else value


class HaltError(RuntimeError):
    """Raised by :meth:`Machine.step` when the program halts and restarts
    are disabled."""


class Machine:
    """Architectural state plus an interpreter for one hardware context.

    :param program: the :class:`~repro.isa.Program` to run.
    :param memory: initial memory image as a dict of 8-byte-aligned byte
        address -> integer word.  Mutated in place by stores.
    :param restart_on_halt: when True (the default for workload runs), a
        ``HALT`` resets the PC to the program entry with registers and
        memory preserved, so runs of any length are possible.
    """

    __slots__ = (
        "program",
        "regs",
        "memory",
        "index",
        "halted",
        "restart_on_halt",
        "instret",
        "restarts",
    )

    def __init__(self, program, memory=None, restart_on_halt=True):
        self.program = program
        self.regs = [0] * 32
        self.memory = memory if memory is not None else {}
        self.index = 0
        self.halted = False
        self.restart_on_halt = restart_on_halt
        self.instret = 0
        self.restarts = 0

    @property
    def pc(self):
        """Current architectural PC."""
        return self.program.pc_of(self.index)

    def read_reg(self, reg):
        """Architectural register read (r31 is hardwired zero)."""
        return 0 if reg == ZERO_REG else self.regs[reg]

    def step(self):
        """Execute one instruction.

        Returns ``(instr, taken, ea)`` where *taken* is the branch outcome
        (False for non-branches) and *ea* is the effective address (None
        for non-memory instructions).  Raises :class:`HaltError` if the
        program halts with ``restart_on_halt`` disabled.
        """
        instrs = self.program.instrs
        regs = self.regs
        instr = instrs[self.index]
        op = instr.op
        next_index = self.index + 1
        taken = False
        ea = None

        if op == Op.LOAD:
            ea = (regs[instr.ra] + instr.imm) & MASK64
            if instr.rd != ZERO_REG:
                regs[instr.rd] = self.memory.get(ea & ~7, 0)
        elif op == Op.ADDI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] + instr.imm
        elif op == Op.ADD:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] + regs[instr.rb]
        elif op == Op.SUBI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] - instr.imm
        elif op == Op.SUB:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] - regs[instr.rb]
        elif op == Op.BNEZ:
            taken = regs[instr.ra] != 0
            if taken:
                next_index = instr.target
        elif op == Op.BEQZ:
            taken = regs[instr.ra] == 0
            if taken:
                next_index = instr.target
        elif op == Op.BLTZ:
            taken = _to_signed(regs[instr.ra]) < 0
            if taken:
                next_index = instr.target
        elif op == Op.BGEZ:
            taken = _to_signed(regs[instr.ra]) >= 0
            if taken:
                next_index = instr.target
        elif op == Op.STORE:
            ea = (regs[instr.ra] + instr.imm) & MASK64
            self.memory[ea & ~7] = regs[instr.rb] & MASK64
        elif op == Op.LI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = instr.imm
        elif op == Op.MOV:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra]
        elif op == Op.BR:
            taken = True
            next_index = instr.target
        elif op == Op.JR:
            taken = True
            next_index = self.program.index_of(regs[instr.ra])
        elif op == Op.MUL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] * regs[instr.rb]) & MASK64
        elif op == Op.XOR:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] ^ regs[instr.rb]) & MASK64
        elif op == Op.AND:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] & regs[instr.rb]
        elif op == Op.OR:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] | regs[instr.rb]
        elif op == Op.ANDI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] & instr.imm
        elif op == Op.SLL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] << (regs[instr.rb] & 63)) & MASK64
        elif op == Op.SRL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] & MASK64) >> (regs[instr.rb] & 63)
        elif op == Op.SLLI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] << (instr.imm & 63)) & MASK64
        elif op == Op.SRLI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] & MASK64) >> (instr.imm & 63)
        elif op == Op.CMPEQ:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = 1 if regs[instr.ra] == regs[instr.rb] else 0
        elif op == Op.CMPLT:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (
                    1 if _to_signed(regs[instr.ra]) < _to_signed(regs[instr.rb]) else 0
                )
        elif op == Op.NOP:
            pass
        elif op == Op.HALT:
            if not self.restart_on_halt:
                self.halted = True
                raise HaltError("program halted after %d instructions" % self.instret)
            self.restarts += 1
            next_index = 0
        else:  # pragma: no cover - opcode space is closed
            raise RuntimeError("unknown opcode %r" % (op,))

        regs[ZERO_REG] = 0
        self.index = next_index
        self.instret += 1
        return instr, taken, ea

    def run(self, max_instructions):
        """Run up to *max_instructions*, returning the list of dynamic records.

        Convenience for tests and analyses; the timing models call
        :meth:`step` directly to avoid materialising traces.
        """
        records = []
        append = records.append
        step = self.step
        for _ in range(max_instructions):
            try:
                append(step())
            except HaltError:
                break
        return records
