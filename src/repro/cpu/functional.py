"""Functional (architectural) interpreter for the reproduction ISA.

The simulator is trace-driven: the :class:`Machine` executes the program in
architectural order and the timing model consumes the resulting dynamic
instruction stream.  This mirrors how gem5's O3 model is driven in the paper
at the fidelity level we need -- the timing core re-creates fetch, ROB,
operand-latency and flush behaviour on top of the architecturally-correct
stream.

The hot loop is :meth:`Machine.step`.  Historically it dispatched with a
25-arm ``if``-chain over ``instr.op`` that re-read every ``Instr`` slot on
every dynamic execution.  The interpreter now *pre-decodes* each static
instruction once into a flat tuple ``(kind, rd, ra, rb, imm, target)`` of
plain ints (see :func:`decode_program`):

* ``kind`` is a dense dispatch code ordered by dynamic frequency, so the
  hot arms (load / addi / add / branches) are reached after one or two
  integer compares against locals (bound via default args -- no global or
  enum-attribute lookups per step);
* writes to the hardwired zero register are folded away at decode time
  (an ALU op targeting r31 decodes to ``NOP``; a load targeting r31 keeps
  its effective-address side channel but skips the write), which also
  removes the per-step ``regs[ZERO] = 0`` repair write;
* per-instruction fields arrive as locals from one tuple unpack instead of
  five attribute loads.

The decoded program is cached on the :class:`~repro.isa.Program` object so
every :class:`Machine` over the same program (CMP cores, variability
re-runs) shares one decode.  :meth:`Machine.step_reference` keeps the
original if-chain implementation; ``tests/test_functional_dispatch.py``
checks the two produce bit-identical architectural streams.
"""

from repro.isa import MASK64, ZERO_REG
from repro.isa.opcodes import Op

_SIGN_BIT = 1 << 63


def _to_signed(value):
    value &= MASK64
    return value - (1 << 64) if value & _SIGN_BIT else value


# ----------------------------------------------------------------------
# dispatch kinds (dense ints, roughly ordered by dynamic frequency)

K_LOAD = 0
K_ADDI = 1
K_ADD = 2
K_BNEZ = 3
K_BEQZ = 4
K_SUBI = 5
K_SUB = 6
K_STORE = 7
K_LI = 8
K_MOV = 9
K_BR = 10
K_BLTZ = 11
K_BGEZ = 12
K_JR = 13
K_MUL = 14
K_XOR = 15
K_AND = 16
K_OR = 17
K_ANDI = 18
K_SLL = 19
K_SRL = 20
K_SLLI = 21
K_SRLI = 22
K_CMPEQ = 23
K_CMPLT = 24
K_NOP = 25
K_HALT = 26
K_LOAD_NODEST = 27  # load with rd == r31: ea side channel, no write

_OP_TO_KIND = {
    Op.LOAD: K_LOAD,
    Op.ADDI: K_ADDI,
    Op.ADD: K_ADD,
    Op.BNEZ: K_BNEZ,
    Op.BEQZ: K_BEQZ,
    Op.SUBI: K_SUBI,
    Op.SUB: K_SUB,
    Op.STORE: K_STORE,
    Op.LI: K_LI,
    Op.MOV: K_MOV,
    Op.BR: K_BR,
    Op.BLTZ: K_BLTZ,
    Op.BGEZ: K_BGEZ,
    Op.JR: K_JR,
    Op.MUL: K_MUL,
    Op.XOR: K_XOR,
    Op.AND: K_AND,
    Op.OR: K_OR,
    Op.ANDI: K_ANDI,
    Op.SLL: K_SLL,
    Op.SRL: K_SRL,
    Op.SLLI: K_SLLI,
    Op.SRLI: K_SRLI,
    Op.CMPEQ: K_CMPEQ,
    Op.CMPLT: K_CMPLT,
    Op.NOP: K_NOP,
    Op.HALT: K_HALT,
}

# kinds whose only architectural effect is a register write (so a r31
# destination makes them architectural no-ops)
_REG_WRITE_KINDS = frozenset({
    K_ADDI, K_ADD, K_SUBI, K_SUB, K_LI, K_MOV, K_MUL, K_XOR, K_AND,
    K_OR, K_ANDI, K_SLL, K_SRL, K_SLLI, K_SRLI, K_CMPEQ, K_CMPLT,
})

# kinds that architecturally write a register after decode-time folding
# (K_LOAD included, K_LOAD_NODEST/K_NOP excluded) -- the functional-trace
# recorder captures exactly these write-back values
WRITE_KINDS = frozenset(_REG_WRITE_KINDS | {K_LOAD})


def write_regs_of(program):
    """Per-static-instruction destination register, or -1 for no write.

    Derived from the same decode the interpreter dispatches on (r31
    folding included), cached on the program object; the trace codec uses
    it to delta-encode register write-back values without storing the
    register number per dynamic instruction.
    """
    cached = getattr(program, "_write_regs", None)
    if cached is not None and len(cached) == len(program.instrs):
        return cached
    decoded = decode_program(program)
    regs = [entry[1] if entry[0] in WRITE_KINDS else -1
            for entry in decoded]
    try:
        program._write_regs = regs
    except AttributeError:  # pragma: no cover - Program has a plain dict
        pass
    return regs


def memory_delta(machine, initial_memory):
    """Memory image delta (``[[addr, value], ...]``) vs *initial_memory*.

    Stores only ever add or overwrite aligned words, so the delta is the
    set of addresses whose value differs from (or is absent in) the
    initial workload image -- the compact form the functional-trace
    trailer persists for live continuation.
    """
    get = initial_memory.get
    return [[addr, value] for addr, value in machine.memory.items()
            if get(addr) != value]


def decode_instr(instr):
    """Decode one static :class:`~repro.isa.Instr` into a dispatch tuple.

    Returns ``(kind, rd, ra, rb, imm, target)`` with unused register
    fields left as 0 so every element is a plain int.
    """
    op = instr.op
    try:
        kind = _OP_TO_KIND[op]
    except KeyError:  # pragma: no cover - opcode space is closed
        raise RuntimeError("unknown opcode %r" % (op,))
    rd = instr.rd if instr.rd is not None else 0
    ra = instr.ra if instr.ra is not None else 0
    rb = instr.rb if instr.rb is not None else 0
    imm = instr.imm
    target = instr.target if instr.target is not None else 0
    # fold hardwired-zero destinations away at decode time
    if rd == ZERO_REG:
        if kind in _REG_WRITE_KINDS:
            kind = K_NOP
        elif kind == K_LOAD:
            kind = K_LOAD_NODEST
    return (kind, rd, ra, rb, imm, target)


def decode_program(program):
    """Pre-decode every instruction of *program* (cached on the program).

    The cache is invalidated if the instruction count changes (programs
    are finalised at construction, so this is a conservative guard).
    """
    cached = getattr(program, "_step_decoded", None)
    if cached is not None and len(cached) == len(program.instrs):
        return cached
    decoded = [decode_instr(instr) for instr in program.instrs]
    try:
        program._step_decoded = decoded
    except AttributeError:  # pragma: no cover - Program has a plain dict
        pass
    return decoded


class HaltError(RuntimeError):
    """Raised by :meth:`Machine.step` when the program halts and restarts
    are disabled."""


class Machine:
    """Architectural state plus an interpreter for one hardware context.

    :param program: the :class:`~repro.isa.Program` to run.
    :param memory: initial memory image as a dict of 8-byte-aligned byte
        address -> integer word.  Mutated in place by stores.
    :param restart_on_halt: when True (the default for workload runs), a
        ``HALT`` resets the PC to the program entry with registers and
        memory preserved, so runs of any length are possible.
    """

    __slots__ = (
        "program",
        "regs",
        "memory",
        "index",
        "halted",
        "restart_on_halt",
        "instret",
        "restarts",
        "_decoded",
        "_instrs",
        "_index_of",
    )

    def __init__(self, program, memory=None, restart_on_halt=True):
        self.program = program
        self.regs = [0] * 32
        self.memory = memory if memory is not None else {}
        self.index = 0
        self.halted = False
        self.restart_on_halt = restart_on_halt
        self.instret = 0
        self.restarts = 0
        self._decoded = decode_program(program)
        self._instrs = program.instrs
        self._index_of = program.index_of

    @property
    def pc(self):
        """Current architectural PC."""
        return self.program.pc_of(self.index)

    def read_reg(self, reg):
        """Architectural register read (r31 is hardwired zero)."""
        return 0 if reg == ZERO_REG else self.regs[reg]

    def step(
        self,
        # dispatch codes bound as locals (module/global lookups are ~30%
        # of the old per-step cost); never pass arguments to step().
        _K_LOAD=K_LOAD,
        _K_ADDI=K_ADDI,
        _K_ADD=K_ADD,
        _K_BNEZ=K_BNEZ,
        _K_BEQZ=K_BEQZ,
        _K_SUBI=K_SUBI,
        _K_SUB=K_SUB,
        _K_STORE=K_STORE,
        _K_LI=K_LI,
        _K_MOV=K_MOV,
        _K_BR=K_BR,
        _K_BLTZ=K_BLTZ,
        _K_BGEZ=K_BGEZ,
        _K_JR=K_JR,
        _K_MUL=K_MUL,
        _K_XOR=K_XOR,
        _K_AND=K_AND,
        _K_OR=K_OR,
        _K_ANDI=K_ANDI,
        _K_SLL=K_SLL,
        _K_SRL=K_SRL,
        _K_SLLI=K_SLLI,
        _K_SRLI=K_SRLI,
        _K_CMPEQ=K_CMPEQ,
        _K_CMPLT=K_CMPLT,
        _K_NOP=K_NOP,
        _K_HALT=K_HALT,
        _K_LOAD_NODEST=K_LOAD_NODEST,
        _MASK64=MASK64,
        _signed=_to_signed,
    ):
        """Execute one instruction.

        Returns ``(instr, taken, ea)`` where *taken* is the branch outcome
        (False for non-branches) and *ea* is the effective address (None
        for non-memory instructions).  Raises :class:`HaltError` if the
        program halts with ``restart_on_halt`` disabled.
        """
        index = self.index
        regs = self.regs
        kind, rd, ra, rb, imm, target = self._decoded[index]
        next_index = index + 1
        taken = False
        ea = None

        if kind == _K_LOAD:
            ea = (regs[ra] + imm) & _MASK64
            regs[rd] = self.memory.get(ea & ~7, 0)
        elif kind == _K_ADDI:
            regs[rd] = regs[ra] + imm
        elif kind == _K_ADD:
            regs[rd] = regs[ra] + regs[rb]
        elif kind == _K_BNEZ:
            taken = regs[ra] != 0
            if taken:
                next_index = target
        elif kind == _K_BEQZ:
            taken = regs[ra] == 0
            if taken:
                next_index = target
        elif kind == _K_SUBI:
            regs[rd] = regs[ra] - imm
        elif kind == _K_SUB:
            regs[rd] = regs[ra] - regs[rb]
        elif kind == _K_STORE:
            ea = (regs[ra] + imm) & _MASK64
            self.memory[ea & ~7] = regs[rb] & _MASK64
        elif kind == _K_LI:
            regs[rd] = imm
        elif kind == _K_MOV:
            regs[rd] = regs[ra]
        elif kind == _K_BR:
            taken = True
            next_index = target
        elif kind == _K_BLTZ:
            taken = _signed(regs[ra]) < 0
            if taken:
                next_index = target
        elif kind == _K_BGEZ:
            taken = _signed(regs[ra]) >= 0
            if taken:
                next_index = target
        elif kind == _K_JR:
            taken = True
            next_index = self._index_of(regs[ra])
        elif kind == _K_MUL:
            regs[rd] = (regs[ra] * regs[rb]) & _MASK64
        elif kind == _K_XOR:
            regs[rd] = (regs[ra] ^ regs[rb]) & _MASK64
        elif kind == _K_AND:
            regs[rd] = regs[ra] & regs[rb]
        elif kind == _K_OR:
            regs[rd] = regs[ra] | regs[rb]
        elif kind == _K_ANDI:
            regs[rd] = regs[ra] & imm
        elif kind == _K_SLL:
            regs[rd] = (regs[ra] << (regs[rb] & 63)) & _MASK64
        elif kind == _K_SRL:
            regs[rd] = (regs[ra] & _MASK64) >> (regs[rb] & 63)
        elif kind == _K_SLLI:
            regs[rd] = (regs[ra] << (imm & 63)) & _MASK64
        elif kind == _K_SRLI:
            regs[rd] = (regs[ra] & _MASK64) >> (imm & 63)
        elif kind == _K_CMPEQ:
            regs[rd] = 1 if regs[ra] == regs[rb] else 0
        elif kind == _K_CMPLT:
            regs[rd] = 1 if _signed(regs[ra]) < _signed(regs[rb]) else 0
        elif kind == _K_NOP:
            pass
        elif kind == _K_LOAD_NODEST:
            ea = (regs[ra] + imm) & _MASK64
        else:  # _K_HALT (kind space is closed by the decoder)
            if not self.restart_on_halt:
                self.halted = True
                raise HaltError(
                    "program halted after %d instructions" % self.instret
                )
            self.restarts += 1
            next_index = 0

        self.index = next_index
        self.instret += 1
        return self._instrs[index], taken, ea

    # ------------------------------------------------------------------

    def step_reference(self):
        """Reference if-chain interpreter (the pre-decode-table semantics).

        Kept as the differential-testing oracle for :meth:`step`: it
        re-derives every field from the :class:`~repro.isa.Instr` record on
        each step exactly as the original implementation did.  Slower;
        never used by the timing models.
        """
        instrs = self.program.instrs
        regs = self.regs
        instr = instrs[self.index]
        op = instr.op
        next_index = self.index + 1
        taken = False
        ea = None

        if op == Op.LOAD:
            ea = (regs[instr.ra] + instr.imm) & MASK64
            if instr.rd != ZERO_REG:
                regs[instr.rd] = self.memory.get(ea & ~7, 0)
        elif op == Op.ADDI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] + instr.imm
        elif op == Op.ADD:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] + regs[instr.rb]
        elif op == Op.SUBI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] - instr.imm
        elif op == Op.SUB:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] - regs[instr.rb]
        elif op == Op.BNEZ:
            taken = regs[instr.ra] != 0
            if taken:
                next_index = instr.target
        elif op == Op.BEQZ:
            taken = regs[instr.ra] == 0
            if taken:
                next_index = instr.target
        elif op == Op.BLTZ:
            taken = _to_signed(regs[instr.ra]) < 0
            if taken:
                next_index = instr.target
        elif op == Op.BGEZ:
            taken = _to_signed(regs[instr.ra]) >= 0
            if taken:
                next_index = instr.target
        elif op == Op.STORE:
            ea = (regs[instr.ra] + instr.imm) & MASK64
            self.memory[ea & ~7] = regs[instr.rb] & MASK64
        elif op == Op.LI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = instr.imm
        elif op == Op.MOV:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra]
        elif op == Op.BR:
            taken = True
            next_index = instr.target
        elif op == Op.JR:
            taken = True
            next_index = self.program.index_of(regs[instr.ra])
        elif op == Op.MUL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] * regs[instr.rb]) & MASK64
        elif op == Op.XOR:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] ^ regs[instr.rb]) & MASK64
        elif op == Op.AND:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] & regs[instr.rb]
        elif op == Op.OR:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] | regs[instr.rb]
        elif op == Op.ANDI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = regs[instr.ra] & instr.imm
        elif op == Op.SLL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] << (regs[instr.rb] & 63)) & MASK64
        elif op == Op.SRL:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] & MASK64) >> (regs[instr.rb] & 63)
        elif op == Op.SLLI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] << (instr.imm & 63)) & MASK64
        elif op == Op.SRLI:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (regs[instr.ra] & MASK64) >> (instr.imm & 63)
        elif op == Op.CMPEQ:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = 1 if regs[instr.ra] == regs[instr.rb] else 0
        elif op == Op.CMPLT:
            if instr.rd != ZERO_REG:
                regs[instr.rd] = (
                    1 if _to_signed(regs[instr.ra]) < _to_signed(regs[instr.rb]) else 0
                )
        elif op == Op.NOP:
            pass
        elif op == Op.HALT:
            if not self.restart_on_halt:
                self.halted = True
                raise HaltError("program halted after %d instructions" % self.instret)
            self.restarts += 1
            next_index = 0
        else:  # pragma: no cover - opcode space is closed
            raise RuntimeError("unknown opcode %r" % (op,))

        regs[ZERO_REG] = 0
        self.index = next_index
        self.instret += 1
        return instr, taken, ea

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Architectural state as a JSON-safe structure.

        The program itself is not captured -- it is immutable and
        re-supplied by the workload at restore time; only the mutable
        state (registers, the memory image, PC index and the retirement
        counters) travels.  Register values are stored raw (they may
        exceed 64 bits between writes -- masking happens lazily).
        """
        return {
            "regs": list(self.regs),
            "memory": [[addr, value] for addr, value in self.memory.items()],
            "index": self.index,
            "halted": self.halted,
            "instret": self.instret,
            "restarts": self.restarts,
        }

    def restore(self, state):
        """Restore architectural state from :meth:`snapshot` output."""
        self.regs = [int(value) for value in state["regs"]]
        self.memory = {int(addr): value for addr, value in state["memory"]}
        self.index = state["index"]
        self.halted = state["halted"]
        self.instret = state["instret"]
        self.restarts = state["restarts"]

    def run(self, max_instructions):
        """Run up to *max_instructions*, returning the list of dynamic records.

        Convenience for tests and analyses; the timing models call
        :meth:`step` directly to avoid materialising traces.
        """
        records = []
        append = records.append
        step = self.step
        for _ in range(max_instructions):
            try:
                append(step())
            except HaltError:
                break
        return records
