"""Cycle-stepped out-of-order core timing model.

A trace-driven approximation of the paper's 4-wide, 192-entry-ROB gem5 O3
baseline (Table II).  Per cycle the model retires up to ``width``
completed instructions in order, drains the prefetch queue at a bounded
rate, and fetches/dispatches up to ``width`` instructions:

* operand readiness is tracked per architectural register, so dependence
  chains serialise exactly as far as their producers' latencies demand;
* loads access the cache hierarchy when their operands are ready and
  complete after the returned latency -- this is the lever prefetching
  acts on;
* a mispredicted branch stalls fetch until the branch resolves (its own
  operands ready) plus a redirect penalty -- the flush bubble;
* a predicted-taken branch ends the fetch group (one taken redirect per
  cycle), which is what makes the Fig. 7 branches-per-fetch-cycle
  histogram meaningful;
* the ROB bounds in-flight instructions, recreating ROB-full stalls under
  long-latency misses.

The model is deliberately idle-cycle-skipping: when fetch cannot proceed
(flush bubble or full ROB) the clock jumps to the next event, which makes
memory-bound regions cheap to simulate without changing any outcome.
"""

from repro.isa.opcodes import (
    IS_ALU as _IS_ALU,
    IS_BRANCH as _IS_BRANCH,
    IS_COND_BRANCH as _IS_COND_BRANCH,
    Op,
)
from repro.prefetchers.base import Prefetcher as _BasePrefetcher

_FETCH_HIST_BUCKETS = 4

# plain-int opcodes for the dispatch hot path (IntEnum attribute lookups
# cost a global + class-attr load per comparison)
_OP_LOAD = int(Op.LOAD)
_OP_STORE = int(Op.STORE)
_OP_MUL = int(Op.MUL)
_OP_JR = int(Op.JR)


def _noop_hook(unbound, bound):
    """True when *bound* is the no-op base-class implementation of
    *unbound* -- lets the core skip the call entirely."""
    func = getattr(bound, "__func__", None)
    return func is unbound


class CoreConfig:
    """Pipeline parameters (defaults = paper Table II)."""

    def __init__(
        self,
        width=4,
        rob_entries=192,
        redirect_penalty=3,
        alu_latency=1,
        mul_latency=3,
        store_latency=1,
        prefetch_drain_rate=2,
        block_bytes=64,
        frontend="off",
    ):
        # fail fast: a zero-wide pipeline or non-positive latency makes
        # the cycle loop diverge or silently stall forever
        for field, value in (
            ("width", width), ("rob_entries", rob_entries),
            ("alu_latency", alu_latency), ("mul_latency", mul_latency),
            ("store_latency", store_latency),
            ("prefetch_drain_rate", prefetch_drain_rate),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    "CoreConfig.%s must be a positive integer, got %r"
                    % (field, value)
                )
        if redirect_penalty < 0:
            raise ValueError(
                "CoreConfig.redirect_penalty must be >= 0 cycles, got %r"
                % (redirect_penalty,)
            )
        self.width = width
        self.rob_entries = rob_entries
        self.redirect_penalty = redirect_penalty
        self.alu_latency = alu_latency
        self.mul_latency = mul_latency
        self.store_latency = store_latency
        self.prefetch_drain_rate = prefetch_drain_rate
        self.block_bytes = block_bytes
        self.block_shift = block_bytes.bit_length() - 1
        if 1 << self.block_shift != block_bytes:
            raise ValueError("block size must be a power of two, got %r"
                             % (block_bytes,))
        from repro.frontend.config import FRONTEND_MODES
        if frontend not in FRONTEND_MODES:
            raise ValueError(
                "CoreConfig.frontend must be one of %s, got %r"
                % (", ".join(FRONTEND_MODES), frontend)
            )
        self.frontend = frontend


class OutOfOrderCore:
    """One core: functional machine + predictor + hierarchy + prefetcher."""

    def __init__(self, machine, hierarchy, predictor, confidence, btb,
                 prefetcher, config=None):
        self.machine = machine
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.confidence = confidence
        self.btb = btb
        self.prefetcher = prefetcher
        # Pre-bind prefetcher hooks, dropping ones that are base-class
        # no-ops: the "none" baseline and the miss-driven prefetchers
        # then pay zero per-instruction call overhead for unused events.
        if prefetcher is None:
            self._pf_on_commit = None
            self._pf_on_branch_decode = None
        else:
            hook = prefetcher.on_commit
            self._pf_on_commit = (
                None if _noop_hook(_BasePrefetcher.on_commit, hook) else hook
            )
            hook = prefetcher.on_branch_decode
            self._pf_on_branch_decode = (
                None
                if _noop_hook(_BasePrefetcher.on_branch_decode, hook)
                else hook
            )
        self.config = config or CoreConfig()
        # fetch-block geometry follows the configured L1 line size (not a
        # hard-coded 64B shift) so non-default lines redirect correctly
        self._fetch_shift = self.config.block_shift
        # decoupled front end: None until bind_frontend() (and always
        # None with CoreConfig.frontend="off" -- that path is untouched)
        self.frontend = None
        self._if_on_commit = None
        self._if_on_branch_decode = None
        # pipeline state
        self.cycle = 0
        self.reg_ready = [0] * 32
        self.rob = []  # completion times, ring-buffer style
        self._rob_head = 0
        self.fetch_stall_until = 0
        self._fetch_block = -1
        # counters
        self.retired = 0
        self.budget = 0
        self.done = False
        self.cond_branches = 0
        self.branches = 0
        self.mispredicts = 0
        self.fetch_branch_hist = [0] * (_FETCH_HIST_BUCKETS + 1)
        self.fetch_cycles = 0
        self.rob_full_stalls = 0    # idle steps blocked by a full ROB
        self.flush_stall_cycles = 0  # idle steps inside a redirect bubble
        # tracing (None = "branch" category disabled)
        self._trace_branch = None

    def bind_tracer(self, tracer):
        """Cache the tracer's ``branch`` channel (None disables)."""
        self._trace_branch = (
            tracer.channel("branch") if tracer is not None else None
        )

    def bind_frontend(self, frontend):
        """Attach a :class:`~repro.frontend.DecoupledFrontEnd`; fetch
        then goes through its FTQ + L1-I demand path, and the I-side
        prefetcher's commit/decode hooks are pre-bound with the same
        no-op elision as the D-side ones."""
        self.frontend = frontend
        iprefetcher = frontend.iprefetcher
        hook = iprefetcher.on_commit
        self._if_on_commit = (
            None if _noop_hook(_BasePrefetcher.on_commit, hook) else hook
        )
        hook = iprefetcher.on_branch_decode
        self._if_on_branch_decode = (
            None
            if _noop_hook(_BasePrefetcher.on_branch_decode, hook)
            else hook
        )

    # ------------------------------------------------------------------

    def start(self, budget):
        """Arm the core to retire *budget* instructions."""
        self.budget = budget
        self.done = False

    def _rob_len(self):
        return len(self.rob) - self._rob_head

    def step_cycle(self, now):
        """Advance one cycle at time *now*; return the next time this core
        has work to do (``now + 1`` while actively fetching)."""
        cfg = self.config
        width = cfg.width
        rob = self.rob

        # retire (in order, up to width)
        head = self._rob_head
        retired = self.retired
        limit = head + width
        rob_len = len(rob)
        while head < rob_len and head < limit and rob[head] <= now:
            head += 1
            retired += 1
        self._rob_head = head
        self.retired = retired
        if head > 4096:  # compact the ring buffer
            del rob[:head]
            self._rob_head = 0
            head = 0
        budget = self.budget
        if retired >= budget:
            self.done = True
            return now + 1

        # drain queued prefetches into the hierarchy
        prefetcher = self.prefetcher
        if prefetcher is not None and len(prefetcher.queue):
            prefetcher.drain(self.hierarchy, now, cfg.prefetch_drain_rate)

        # decoupled front end: the BPU run-ahead advances every cycle,
        # including I-miss and redirect stall cycles -- the decoupling
        frontend = self.frontend
        if frontend is not None:
            frontend.tick(now)

        # fetch / dispatch
        fetched = 0
        branches_in_group = 0
        rob_cap = cfg.rob_entries
        if now >= self.fetch_stall_until:
            machine_step = self.machine.step
            dispatch = self._dispatch
            hierarchy = self.hierarchy
            l1_latency = hierarchy.config.l1_latency
            is_branch = _IS_BRANCH
            demand_ifetch = (
                hierarchy.ifetch if frontend is None
                else frontend.demand_fetch
            )
            # _rob_head is only moved by retire, so in-flight occupancy
            # can be tracked locally instead of re-measuring the ROB list
            # on every loop iteration
            in_flight = len(rob) - head
            dispatched_total = retired + in_flight
            fetch_block = self._fetch_block
            fetch_shift = self._fetch_shift
            while (
                fetched < width
                and in_flight < rob_cap
                and dispatched_total < budget
            ):
                instr, taken, ea = machine_step()
                pc = instr.pc
                block = pc >> fetch_shift
                if block != fetch_block:
                    fetch_block = block
                    ifetch_latency = demand_ifetch(pc, now)
                    if ifetch_latency > l1_latency:
                        self.fetch_stall_until = now + ifetch_latency
                fetched += 1
                in_flight += 1
                dispatched_total += 1
                group_ends = dispatch(instr, taken, ea, now)
                if is_branch[instr.op]:
                    branches_in_group += 1
                if group_ends:
                    break
            self._fetch_block = fetch_block
        if fetched:
            self.fetch_cycles += 1
            if branches_in_group:
                bucket = min(branches_in_group, _FETCH_HIST_BUCKETS)
                self.fetch_branch_hist[bucket] += 1
            return now + 1

        # idle: jump to the next event
        if now < self.fetch_stall_until:
            self.flush_stall_cycles += 1
        elif len(rob) - self._rob_head >= rob_cap:
            self.rob_full_stalls += 1
        candidates = []
        if self._rob_head < len(rob):
            candidates.append(rob[self._rob_head])
        if now < self.fetch_stall_until:
            candidates.append(self.fetch_stall_until)
        if prefetcher is not None and len(prefetcher.queue):
            return now + 1  # keep draining at full rate
        if frontend is not None and frontend.busy():
            return now + 1  # keep the run-ahead and I-drain ticking
        if not candidates:
            return now + 1
        return max(now + 1, min(candidates))

    # ------------------------------------------------------------------

    def _dispatch(self, instr, taken, ea, now):
        """Dispatch one instruction; returns True if the fetch group ends."""
        cfg = self.config
        reg_ready = self.reg_ready
        op = instr.op

        ready = now + 1
        ra = instr.ra
        if ra is not None and reg_ready[ra] > ready:
            ready = reg_ready[ra]
        rb = instr.rb
        if rb is not None and (op == _OP_STORE or _IS_ALU[op]):
            if reg_ready[rb] > ready:
                ready = reg_ready[rb]

        group_ends = False
        prefetcher = self.prefetcher

        if op == _OP_LOAD:
            if prefetcher is not None and prefetcher.is_perfect:
                latency = self.hierarchy.access_oracle(ea, ready)
            else:
                latency, hit = self.hierarchy.load(ea, ready)
                if prefetcher is not None:
                    prefetcher.on_load(instr.pc, ea, hit, now)
            complete = ready + latency
            reg_ready[instr.rd] = complete
        elif op == _OP_STORE:
            if prefetcher is not None and prefetcher.is_perfect:
                self.hierarchy.access_oracle(ea, ready)
            else:
                self.hierarchy.store(ea, ready)
                if prefetcher is not None:
                    prefetcher.on_store(instr.pc, ea, True, now)
            complete = ready + cfg.store_latency
        elif _IS_BRANCH[op]:
            complete = ready + cfg.alu_latency
            group_ends = self._handle_branch(instr, taken, now, complete)
            self.branches += 1
        else:
            if op == _OP_MUL:
                complete = ready + cfg.mul_latency
            else:
                complete = ready + cfg.alu_latency
            if instr.rd is not None:
                reg_ready[instr.rd] = complete
        self.rob.append(complete)
        on_commit = self._pf_on_commit
        if on_commit is not None:
            machine = self.machine
            on_commit(instr, ea, taken, machine.pc, machine.regs, complete)
        on_commit = self._if_on_commit
        if on_commit is not None:
            machine = self.machine
            on_commit(instr, ea, taken, machine.pc, machine.regs, complete)
        return group_ends

    def _handle_branch(self, instr, taken, now, resolve_time):
        """Predict, train, trigger B-Fetch, apply flush penalties."""
        cfg = self.config
        pc = instr.pc
        actual_next = self.machine.pc
        op = instr.op
        predictor = self.predictor
        on_branch_decode = self._pf_on_branch_decode

        frontend = self.frontend
        if_decode = self._if_on_branch_decode

        if _IS_COND_BRANCH[op]:
            history = predictor.history
            predicted = predictor.predict(pc)
            correct = predicted == taken
            self.cond_branches += 1
            if not correct:
                self.mispredicts += 1
            trace = self._trace_branch
            if trace is not None:
                trace.emit("predict", now, pc=pc, taken=taken,
                           predicted=predicted, correct=correct)
            self.confidence.update(pc, history, correct, taken)
            predictor.update(pc, taken)
            taken_target = pc + 4 * (instr.target - instr.index)
            if on_branch_decode is not None:
                on_branch_decode(pc, predicted, taken_target, now)
            if if_decode is not None:
                if_decode(pc, predicted, taken_target, now)
            if frontend is not None and taken:
                # demand-train the BTB on executed taken direct branches
                # so the BPU run-ahead walker can see them (off mode
                # keeps the BTB JR-only, untouched)
                self.btb.update(pc, taken_target)
            if not correct:
                self.fetch_stall_until = resolve_time + cfg.redirect_penalty
                if frontend is not None:
                    frontend.redirect(actual_next, now)
                return True
            return predicted  # predicted-taken ends the fetch group
        if op == _OP_JR:
            predicted_target = self.btb.lookup(pc)
            self.btb.update(pc, actual_next)
            correct = predicted_target == actual_next
            # train the confidence estimator on indirect targets too, so
            # the lookahead's path confidence reflects JR predictability
            self.confidence.update(pc, predictor.history, correct, True)
            if on_branch_decode is not None:
                on_branch_decode(pc, True, predicted_target, now)
            if if_decode is not None:
                if_decode(pc, True, predicted_target, now)
            if not correct:
                self.mispredicts += 1
                self.fetch_stall_until = resolve_time + cfg.redirect_penalty
                if frontend is not None:
                    frontend.redirect(actual_next, now)
            return True
        # direct unconditional: target known at decode, no mispredict
        self.confidence.update(pc, predictor.history, True, True)
        taken_target = pc + 4 * (instr.target - instr.index)
        if frontend is not None:
            self.btb.update(pc, taken_target)
        if on_branch_decode is not None:
            on_branch_decode(pc, True, taken_target, now)
        if if_decode is not None:
            if_decode(pc, True, taken_target, now)
        return True

    # ------------------------------------------------------------------

    def run(self, budget):
        """Run standalone until *budget* instructions retire; returns the
        cycle count."""
        self.start(budget)
        now = self.cycle
        step = self.step_cycle
        while not self.done:
            now = step(now)
        self.cycle = now
        return now

    def run_until(self, now, stop_cycle):
        """Run from time *now* until completion or ``stop_cycle``.

        The chunked driver used by checkpointing and the sanitizer: the
        inner loop is the same tight ``step_cycle`` loop as :meth:`run`,
        so the step sequence (and therefore every counter) is
        byte-identical to an uninterrupted run -- the chunk boundaries
        only decide *when* the caller gets control back.
        """
        step = self.step_cycle
        while not self.done and now < stop_cycle:
            now = step(now)
        return now

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Pipeline state as a JSON-safe structure (machine excluded --
        the functional core snapshots itself)."""
        return {
            "cycle": self.cycle,
            "reg_ready": list(self.reg_ready),
            # store the live window only; restoring with head 0 is
            # behaviour-neutral (the ring compaction is itself neutral)
            "rob": list(self.rob[self._rob_head:]),
            "fetch_stall_until": self.fetch_stall_until,
            "fetch_block": self._fetch_block,
            "retired": self.retired,
            "budget": self.budget,
            "done": self.done,
            "cond_branches": self.cond_branches,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "fetch_branch_hist": list(self.fetch_branch_hist),
            "fetch_cycles": self.fetch_cycles,
            "rob_full_stalls": self.rob_full_stalls,
            "flush_stall_cycles": self.flush_stall_cycles,
        }

    def restore(self, state):
        """Restore pipeline state from :meth:`snapshot` output."""
        self.cycle = state["cycle"]
        self.reg_ready = [int(value) for value in state["reg_ready"]]
        self.rob = list(state["rob"])
        self._rob_head = 0
        self.fetch_stall_until = state["fetch_stall_until"]
        self._fetch_block = state["fetch_block"]
        self.retired = state["retired"]
        self.budget = state["budget"]
        self.done = state["done"]
        self.cond_branches = state["cond_branches"]
        self.branches = state["branches"]
        self.mispredicts = state["mispredicts"]
        self.fetch_branch_hist = list(state["fetch_branch_hist"])
        self.fetch_cycles = state["fetch_cycles"]
        self.rob_full_stalls = state["rob_full_stalls"]
        self.flush_stall_cycles = state["flush_stall_cycles"]

    @property
    def ipc(self):
        return self.retired / self.cycle if self.cycle else 0.0

    @property
    def mispredict_rate(self):
        return self.mispredicts / self.cond_branches if self.cond_branches else 0.0
