"""Micro-harness timing the simulator's hot paths.

Measures simulated-instructions-per-second for three components:

* ``functional`` -- the architectural interpreter alone
  (:class:`~repro.cpu.functional.Machine`);
* ``ooo`` -- the cycle-stepped timing core with the full memory
  hierarchy, no prefetcher;
* ``full_system`` -- the same plus the B-Fetch engine (lookahead walks,
  MHT/BrTC training, per-load filter), i.e. the Fig. 8 configuration.

plus an optional end-to-end *sweep* comparison that times a cold-cache
Fig. 8-style batch serially and through the parallel
:meth:`~repro.sim.ExperimentRunner.run_many` engine, and an optional
*serve* round-trip bench that boots the job server on a background
thread and measures jobs/s and p50/p95 latency for uncached (computed)
vs cached submissions.

Results are written as machine-readable ``BENCH_*.json`` files (schema
``repro-perf-v1``) under ``benchmarks/perf/`` so the repo accumulates a
perf trajectory over time; run via ``python -m repro bench-perf``.
"""

import datetime
import json
import os
import platform
import tempfile
import time

from repro.cpu.functional import Machine
from repro.obs import Profiler
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner, RunRequest
from repro.sim.system import System
from repro.workloads.spec import build_workload

SCHEMA = "repro-perf-v1"
COMPONENTS = ("functional", "ooo", "full_system")


def host_info():
    """Provenance block stamped into every BENCH point: interpreter,
    platform, CPU count and the repo's git revision (when available) --
    enough to know which machine and source produced a number."""
    info = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": None,
    }
    try:
        import subprocess
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if sha.returncode == 0:
            info["git_sha"] = sha.stdout.strip()
    except Exception:
        pass
    return info

# Fig. 8 prefetcher columns (stride / SMS / B-Fetch vs the baseline)
SWEEP_PREFETCHERS = ("none", "stride", "sms", "bfetch")


def bench_component(component, benchmark="libquantum", instructions=30_000):
    """Time one component; returns ``{instructions, seconds, instr_per_sec,
    phases}``.

    ``seconds``/``instr_per_sec`` cover the simulation loop only, keeping
    the payload comparable with older ``repro-perf-v1`` files; the
    ``phases`` block (a :class:`~repro.obs.Profiler` dump) additionally
    splits construction (workload build + system assembly) from the run
    so construction-cost regressions are visible too.
    """
    profiler = Profiler()
    with profiler.section("build"):
        workload = build_workload(benchmark)
        if component == "functional":
            target = Machine(workload.program, dict(workload.memory))
        elif component == "ooo":
            target = System(workload, SystemConfig(prefetcher="none"))
        elif component == "full_system":
            target = System(workload, SystemConfig(prefetcher="bfetch"))
        else:
            raise ValueError(
                "unknown component %r (choose from %s)"
                % (component, ", ".join(COMPONENTS))
            )
    with profiler.section("run", items=instructions):
        target.run(instructions)
    seconds = profiler.phases["run"].seconds
    return {
        "instructions": instructions,
        "seconds": seconds,
        "instr_per_sec": instructions / seconds if seconds else 0.0,
        "phases": profiler.as_dict(),
    }


def bench_sweep(benchmarks, prefetchers=SWEEP_PREFETCHERS,
                instructions=10_000, jobs=4, policy=None):
    """Cold-cache sweep wall-clock: serial vs parallel ``run_many``.

    Both passes use fresh temporary cache directories, so each measures a
    complete cold evaluation of ``len(benchmarks) x len(prefetchers)``
    runs.  Returns serial/parallel wall times, the speedup, a
    byte-identity flag comparing the two result sets, and the parallel
    pass's :class:`~repro.resilience.BatchReport` counters (so perf
    trajectories taken on flaky hosts record how much retrying they
    needed).

    :param policy: optional :class:`~repro.resilience.FailurePolicy`
        applied to both passes.
    """
    requests = [
        RunRequest(bench, prefetcher, instructions)
        for bench in benchmarks
        for prefetcher in prefetchers
    ]
    with tempfile.TemporaryDirectory() as serial_dir:
        serial_runner = ExperimentRunner(cache_dir=serial_dir, policy=policy)
        start = time.perf_counter()
        serial_results = serial_runner.run_many(requests, jobs=1)
        serial_seconds = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as parallel_dir:
        parallel_runner = ExperimentRunner(cache_dir=parallel_dir,
                                           policy=policy)
        start = time.perf_counter()
        parallel_results = parallel_runner.run_many(requests, jobs=jobs)
        parallel_seconds = time.perf_counter() - start
    identical = [r.as_dict() for r in serial_results] == [
        r.as_dict() for r in parallel_results
    ]
    report = parallel_runner.last_report
    return {
        "runs": len(requests),
        "batch_report": report.as_dict() if report is not None else None,
        "benchmarks": list(benchmarks),
        "prefetchers": list(prefetchers),
        "instructions_per_run": instructions,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": (
            serial_seconds / parallel_seconds if parallel_seconds else 0.0
        ),
        "results_identical": identical,
    }


def bench_serve(benchmarks=("libquantum", "mcf"),
                prefetchers=("none", "bfetch"),
                instructions=4_000, clients=4, max_concurrent=2):
    """Job-server round-trip throughput: uncached vs cached phases.

    Boots a :class:`~repro.serve.ServerThread` on an ephemeral port with a
    fresh temporary cache, then drives it twice with *clients* concurrent
    :class:`~repro.serve.ServeClient` threads, each submitting its
    round-robin share of the ``len(benchmarks) x len(prefetchers)``
    single-run jobs and blocking on the result:

    * **uncached** -- the cold pass; every job simulates, so its latency
      is dominated by compute and the jobs/s number measures the server's
      end-to-end scheduling + execution path;
    * **cached** -- the identical submissions again; every job is served
      from the result cache in one probe pass, so its latency is pure
      service overhead (framing, admission, cache probe, reply).

    The gap between the two populations is the point of the split
    ``serve.latency.{cached,computed}`` windows (DESIGN.md §8); this
    bench records both, plus jobs/s per phase, straight from the server's
    ``statz`` registry so the numbers shown here are the numbers the
    server itself reports in production.
    """
    import threading

    from repro.serve import ServeClient, ServerThread

    pairs = [
        (bench, prefetcher)
        for bench in benchmarks
        for prefetcher in prefetchers
    ]

    def drive(address):
        """One phase: *clients* threads submit their share; returns secs."""
        errors = []

        def worker(idx):
            try:
                with ServeClient(address[0], address[1],
                                 timeout=300.0) as conn:
                    for j, (bench, prefetcher) in enumerate(pairs):
                        if j % clients != idx:
                            continue
                        conn.run(bench, prefetcher,
                                 instructions=instructions)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(idx,))
            for idx in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return time.perf_counter() - start

    def latency_block(stats, series):
        prefix = "serve.latency.%s." % series
        return {
            key[len(prefix):]: value
            for key, value in stats.items()
            if key.startswith(prefix)
        }

    with tempfile.TemporaryDirectory() as cache_dir:
        with ServerThread(cache_dir=cache_dir,
                          max_concurrent=max_concurrent) as server:
            uncached_seconds = drive(server.address)
            cached_seconds = drive(server.address)
            with ServeClient(server.address[0],
                             server.address[1]) as conn:
                stats = conn.statz()
    jobs = len(pairs)
    return {
        "jobs_per_phase": jobs,
        "benchmarks": list(benchmarks),
        "prefetchers": list(prefetchers),
        "instructions_per_run": instructions,
        "clients": clients,
        "max_concurrent": max_concurrent,
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "uncached_jobs_per_sec": (
            jobs / uncached_seconds if uncached_seconds else 0.0
        ),
        "cached_jobs_per_sec": (
            jobs / cached_seconds if cached_seconds else 0.0
        ),
        "latency": {
            "computed": latency_block(stats, "computed"),
            "cached": latency_block(stats, "cached"),
        },
        "runs_computed": stats.get("serve.runs.computed"),
        "cache_hits": stats.get("serve.runs.cache_hits"),
    }


def bench_fleet(benchmarks=("libquantum", "mcf"),
                prefetchers=("none", "bfetch"),
                instructions=4_000, variants=3,
                worker_counts=(1, 2, 4),
                chaos="worker-kill:0.3:seed=11"):
    """Fleet-tier throughput scaling, with and without worker chaos.

    For each worker count, boots a fresh fleet server (subprocess
    workers, cold cache) and drives the same ``len(benchmarks) x
    len(prefetchers) x variants`` single-run batch through one client,
    twice: a clean pass and a pass under *chaos* (``worker-kill``
    exported to the worker subprocesses).  Each phase records jobs/s
    plus the server's own ``serve.latency.computed`` p50/p99 and the
    ``serve.fleet.*`` recovery counters, so the numbers quantify two
    things at once:

    * **scaling** -- how jobs/s moves from 1 to 2 to 4 workers (process
      isolation buys real parallelism; the in-process tier shares the
      GIL);
    * **chaos tax** -- what sustained worker loss costs end to end when
      every kill is absorbed by requeue + cache-checkpoint resume
      (every job still completes; the phase asserts it).
    """
    from repro.serve import ServeClient, ServerThread

    grid = [
        (bench, prefetcher, variant)
        for bench in benchmarks
        for prefetcher in prefetchers
        for variant in range(variants)
    ]

    def phase(workers, faults):
        previous = os.environ.pop("REPRO_FAULTS", None)
        if faults:
            os.environ["REPRO_FAULTS"] = faults
        try:
            with tempfile.TemporaryDirectory() as cache_dir:
                with ServerThread(cache_dir=cache_dir, workers=workers,
                                  beat_interval=0.25,
                                  heartbeat_interval=0,
                                  high_water=len(grid) + 8) as server:
                    host, port = server.address
                    start = time.perf_counter()
                    with ServeClient(host, port, timeout=300.0) as conn:
                        tickets = [
                            conn.submit(bench, prefetcher,
                                        instructions=instructions,
                                        variant=variant)
                            for bench, prefetcher, variant in grid
                        ]
                        for ticket in tickets:
                            reply = conn.result(ticket["job_id"],
                                                wait=True)
                            assert reply["state"] == "done", reply
                        seconds = time.perf_counter() - start
                        stats = conn.statz()
        finally:
            if previous is None:
                os.environ.pop("REPRO_FAULTS", None)
            else:
                os.environ["REPRO_FAULTS"] = previous
        latency = {
            key[len("serve.latency.computed."):]: value
            for key, value in stats.items()
            if key.startswith("serve.latency.computed.")
        }
        return {
            "workers": workers,
            "chaos": bool(faults),
            "jobs": len(grid),
            "seconds": seconds,
            "jobs_per_sec": len(grid) / seconds if seconds else 0.0,
            "latency_p50": latency.get("p50"),
            "latency_p99": latency.get("p99"),
            "respawns": stats.get("serve.fleet.respawns"),
            "requeues": stats.get("serve.fleet.requeues"),
        }

    phases = []
    for workers in worker_counts:
        phases.append(phase(workers, None))
        phases.append(phase(workers, chaos))
    return {
        "benchmarks": list(benchmarks),
        "prefetchers": list(prefetchers),
        "instructions_per_run": instructions,
        "variants": variants,
        "chaos_spec": chaos,
        "phases": phases,
    }


def bench_load(requests=10_000, clients=32, instructions=2_000,
               benchmarks=("libquantum", "mcf"),
               prefetchers=("none", "stride", "bfetch"),
               variants=16, zipf_s=1.1, seed=7,
               chaos="host-kill:0.25:seed=11,cache-peer-corrupt:0.2:"
                     "seed=12"):
    """Cluster tier under a zipf-skewed synthetic client load.

    Builds a universe of ``len(benchmarks) x len(prefetchers) x
    variants`` distinct jobs and draws *requests* submissions from it
    under a Zipf(s) popularity law (rank-weighted ``1/rank**s``), the
    standard skew model for request traffic: a few hot cells dominate,
    a long tail stays cold.  The skew is what makes the cache tiers
    measurable -- hot cells coalesce on the server and hit the result
    cache; tail cells exercise compute and, across nodes, the
    cache-peer read-through path.

    Three phases, each on a fresh coordinator (cold cache) driven by
    *clients* concurrent client threads:

    * **1 node, clean** -- baseline throughput;
    * **2 nodes, clean** -- scaling plus cache-peer traffic;
    * **2 nodes, chaos** -- same under ``host-kill`` (nodes die at
      shard boundaries; a keeper thread respawns them, exercising
      requeue + reconnect replay) and ``cache-peer-corrupt`` (served
      replicas are corrupted on the wire and must be rejected by
      envelope verification, never trusted).

    Each phase records submissions/s, completed jobs/s, the server's
    own p50/p99 latency, coalesce rate, cache-peer hit rate, steals,
    requeues and degraded transitions.  Every submission must end
    ``done`` -- lost work fails the bench.
    """
    import random
    import threading

    from repro.serve import ServeClient, ServerThread
    from repro.serve.cluster.node import spawn_node

    universe = [
        (bench, prefetcher, variant)
        for bench in benchmarks
        for prefetcher in prefetchers
        for variant in range(variants)
    ]
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(universe))]
    schedule = rng.choices(universe, weights=weights, k=requests)

    def phase(node_count, faults):
        previous = os.environ.pop("REPRO_FAULTS", None)
        if faults:
            os.environ["REPRO_FAULTS"] = faults
        nodes = []
        keeper_stop = threading.Event()
        respawns = [0]
        try:
            with tempfile.TemporaryDirectory() as cache_dir:
                with ServerThread(cache_dir=cache_dir, cluster=True,
                                  workers=1, beat_interval=0.25,
                                  heartbeat_interval=0,
                                  high_water=max(256, clients * 4),
                                  drain_grace=5.0) as server:
                    host, port = server.address
                    nodes.extend(
                        spawn_node((host, port), node_id="load-n%d" % i)
                        for i in range(node_count)
                    )

                    def keeper():
                        # a host supervisor: respawn dead node agents so
                        # chaos kills become churn, not permanent loss
                        while not keeper_stop.wait(0.5):
                            for i, proc in enumerate(nodes):
                                if proc.poll() is not None:
                                    respawns[0] += 1
                                    nodes[i] = spawn_node(
                                        (host, port),
                                        node_id="load-n%d" % i,
                                    )

                    threading.Thread(target=keeper, daemon=True).start()
                    with ServeClient(host, port, timeout=600.0) as probe:
                        for _ in range(200):
                            if len(probe.fleet().get("nodes") or []) \
                                    >= node_count:
                                break
                            time.sleep(0.1)
                        errors = []

                        def worker(idx):
                            try:
                                with ServeClient(host, port,
                                                 timeout=600.0,
                                                 busy_retries=8) as conn:
                                    for j, cell in enumerate(schedule):
                                        if j % clients != idx:
                                            continue
                                        bench, prefetcher, variant = cell
                                        ticket = conn.submit(
                                            bench, prefetcher,
                                            instructions=instructions,
                                            variant=variant,
                                        )
                                        reply = conn.result(
                                            ticket["job_id"], wait=True)
                                        assert reply["state"] == "done", \
                                            reply
                            except Exception as exc:
                                errors.append(exc)

                        threads = [
                            threading.Thread(target=worker, args=(idx,))
                            for idx in range(clients)
                        ]
                        start = time.perf_counter()
                        for thread in threads:
                            thread.start()
                        for thread in threads:
                            thread.join()
                        seconds = time.perf_counter() - start
                        if errors:
                            raise errors[0]
                        stats = probe.statz()
                        fleet = probe.fleet()
                    keeper_stop.set()
        finally:
            keeper_stop.set()
            for proc in nodes:
                if proc.poll() is None:
                    proc.terminate()
            for proc in nodes:
                try:
                    proc.wait(timeout=10)
                except Exception:  # noqa: BLE001
                    proc.kill()
            if previous is None:
                os.environ.pop("REPRO_FAULTS", None)
            else:
                os.environ["REPRO_FAULTS"] = previous
        latency = {
            key[len("serve.latency.all."):]: value
            for key, value in stats.items()
            if key.startswith("serve.latency.all.")
        }
        peer = fleet.get("peer_totals") or {}
        peer_lookups = peer.get("hits", 0) + peer.get("misses", 0)
        submitted = stats.get("serve.jobs.submitted", 0)
        completed = stats.get("serve.jobs.completed", 0)
        return {
            "nodes": node_count,
            "chaos": bool(faults),
            "submissions": submitted,
            "jobs_completed": completed,
            "seconds": seconds,
            "submissions_per_sec": submitted / seconds if seconds else 0.0,
            "jobs_per_sec": completed / seconds if seconds else 0.0,
            "coalesce_rate": (
                stats.get("serve.jobs.coalesced", 0) / submitted
                if submitted else 0.0
            ),
            "latency_p50": latency.get("p50"),
            "latency_p99": latency.get("p99"),
            "cache_hit_ratio": stats.get("serve.cache.hit_ratio"),
            "peer_hits": peer.get("hits", 0),
            "peer_corrupt_rejected": peer.get("corrupt", 0),
            "peer_hit_rate": (
                peer.get("hits", 0) / peer_lookups if peer_lookups
                else None
            ),
            "steals": stats.get("serve.cluster.steals"),
            "requeues": stats.get("serve.cluster.requeues"),
            "replayed": stats.get("serve.cluster.replayed"),
            "nodes_lost": stats.get("serve.cluster.nodes_lost"),
            "degraded_transitions": stats.get(
                "serve.cluster.degraded_transitions"),
            "node_respawns": respawns[0],
        }

    phases = [
        phase(1, None),
        phase(2, None),
        phase(2, chaos),
    ]
    return {
        "requests": requests,
        "clients": clients,
        "instructions_per_run": instructions,
        "universe": len(universe),
        "zipf_s": zipf_s,
        "seed": seed,
        "chaos_spec": chaos,
        "phases": phases,
    }


def bench_trace_replay(benchmarks=("libquantum", "mcf"),
                       prefetchers=SWEEP_PREFETCHERS,
                       instructions=10_000, policy=None):
    """Record-once / re-time-many numbers for the trace substrate.

    Four measurements over the same ``len(benchmarks) x
    len(prefetchers)`` sweep, all serial (``jobs=1``) so they time the
    engine rather than the pool:

    * ``lockstep_seconds`` -- cold sweep with replay off (the baseline);
    * ``record_seconds`` -- recording one functional trace per
      benchmark (the one-time cost the substrate amortises);
    * ``replay_seconds`` -- cold *result* cache but warm *trace* store,
      process memos cleared first, so every cell re-times off its trace
      (what a new config sweep over recorded workloads costs);
    * ``warm_cache_seconds`` -- the identical sweep again with
      everything warm (what re-running a sweep costs end to end; this
      is the repeated-sweep number the cache + trace substrate buys).

    ``results_identical`` asserts the replayed sweep's results are
    byte-identical to the lockstep baseline's; ``replay_instr_per_sec``
    times one replay-driven system run for the first benchmark.
    """
    import shutil

    from repro.trace.store import (
        TraceStore,
        clear_memos,
        replay_counters,
        reset_counters,
    )

    requests = [
        RunRequest(bench, prefetcher, instructions)
        for bench in benchmarks
        for prefetcher in prefetchers
    ]

    def timed_sweep(cache_dir, mode):
        previous = os.environ.get("REPRO_TRACE_REPLAY")
        os.environ["REPRO_TRACE_REPLAY"] = mode
        try:
            runner = ExperimentRunner(cache_dir=cache_dir, policy=policy)
            start = time.perf_counter()
            results = runner.run_many(requests, jobs=1)
            return time.perf_counter() - start, results
        finally:
            if previous is None:
                del os.environ["REPRO_TRACE_REPLAY"]
            else:
                os.environ["REPRO_TRACE_REPLAY"] = previous

    with tempfile.TemporaryDirectory() as lockstep_dir:
        lockstep_seconds, lockstep_results = timed_sweep(
            lockstep_dir, "off")

    with tempfile.TemporaryDirectory() as trace_dir:
        # one-time record cost, measured directly per benchmark
        store = TraceStore(trace_dir)
        start = time.perf_counter()
        for bench in benchmarks:
            store.record(build_workload(bench), instructions)
        record_seconds = time.perf_counter() - start

        # replay-driven single run (hot memos) for an instr/s figure
        workload = build_workload(benchmarks[0])
        trace = store.load(workload, instructions)
        from repro.trace.replay import TraceReplaySource
        system = System(workload, SystemConfig(prefetcher="none"),
                        replay=TraceReplaySource(workload, trace))
        start = time.perf_counter()
        system.run(instructions)
        replay_run_seconds = time.perf_counter() - start

        # cold result cache + warm trace store, fresh-process memo state
        clear_memos()
        reset_counters()
        shutil.rmtree(os.path.join(trace_dir, "single"),
                      ignore_errors=True)
        replay_seconds, replay_results = timed_sweep(trace_dir, "auto")
        counters = dict(replay_counters)

        # everything warm: the repeated-sweep case
        warm_cache_seconds, _warm_results = timed_sweep(trace_dir, "auto")

    identical = [r.as_dict() for r in lockstep_results] == [
        r.as_dict() for r in replay_results
    ]
    return {
        "runs": len(requests),
        "benchmarks": list(benchmarks),
        "prefetchers": list(prefetchers),
        "instructions_per_run": instructions,
        "lockstep_seconds": lockstep_seconds,
        "record_seconds": record_seconds,
        "replay_seconds": replay_seconds,
        "warm_cache_seconds": warm_cache_seconds,
        "replay_speedup": (
            lockstep_seconds / replay_seconds if replay_seconds else 0.0
        ),
        "repeated_sweep_speedup": (
            lockstep_seconds / warm_cache_seconds
            if warm_cache_seconds else 0.0
        ),
        "replay_instr_per_sec": (
            instructions / replay_run_seconds if replay_run_seconds
            else 0.0
        ),
        "results_identical": identical,
        "counters": counters,
    }


def bench_batch(benchmarks=("libquantum", "mcf"),
                prefetchers=SWEEP_PREFETCHERS,
                instructions=10_000, policy=None):
    """SoA batch-kernel numbers for the repeated-sweep workflow.

    Same sweep shape as :func:`bench_trace_replay`, all serial, so the
    two payloads compare directly:

    * ``lockstep_seconds`` -- cold sweep, batch off, replay off (the
      scalar baseline);
    * ``record_seconds`` -- recording one functional trace per
      benchmark (batch implies trace; this is its one-time cost);
    * ``batch_seconds`` -- cold *result* cache, warm *trace* store,
      ``REPRO_BATCH=on``: every cell re-times through the batch kernel
      (what a new config sweep costs with the kernel);
    * ``replay_seconds`` -- the same warm-trace cold-result sweep
      through the scalar fused-replay engine, for the honest per-cell
      ``batch_vs_replay_speedup`` (the kernel's win over the best
      scalar path, not over lockstep);
    * ``warm_cache_seconds`` -- the identical batch sweep again with
      everything warm; ``repeated_sweep_speedup`` is the headline
      repeated-sweep number (lockstep / warm).

    ``batch_instr_per_sec`` times the kernel alone -- all cells as
    lanes of one :class:`~repro.batch.BatchKernel`, hot memos -- and
    ``results_identical`` asserts the batch sweep's payloads are
    byte-identical to the lockstep baseline's.
    """
    import shutil

    from repro.batch import BatchKernel, batch_counters, \
        reset_batch_counters
    from repro.trace.replay import TraceReplaySource
    from repro.trace.store import TraceStore, clear_memos

    requests = [
        RunRequest(bench, prefetcher, instructions)
        for bench in benchmarks
        for prefetcher in prefetchers
    ]

    def timed_sweep(cache_dir, batch_mode, replay_mode):
        saved = {
            name: os.environ.get(name)
            for name in ("REPRO_BATCH", "REPRO_TRACE_REPLAY")
        }
        os.environ["REPRO_BATCH"] = batch_mode
        os.environ["REPRO_TRACE_REPLAY"] = replay_mode
        try:
            runner = ExperimentRunner(cache_dir=cache_dir, policy=policy)
            start = time.perf_counter()
            results = runner.run_many(requests, jobs=1)
            return time.perf_counter() - start, results
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    with tempfile.TemporaryDirectory() as lockstep_dir:
        lockstep_seconds, lockstep_results = timed_sweep(
            lockstep_dir, "off", "off")

    with tempfile.TemporaryDirectory() as batch_dir:
        # one-time record cost (batch implies trace)
        store = TraceStore(batch_dir)
        start = time.perf_counter()
        for bench in benchmarks:
            store.record(build_workload(bench), instructions)
        record_seconds = time.perf_counter() - start

        # cold result cache + warm trace store, through the kernel
        clear_memos()
        reset_batch_counters()
        batch_seconds, batch_results = timed_sweep(batch_dir, "on", "off")
        counters = dict(batch_counters)

        # the same warm-trace cold-result sweep on the scalar replay
        # engine: the honest per-cell comparison
        clear_memos()
        shutil.rmtree(os.path.join(batch_dir, "single"),
                      ignore_errors=True)
        replay_seconds, _replay_results = timed_sweep(
            batch_dir, "off", "auto")

        # everything warm: the repeated-sweep case
        warm_cache_seconds, _warm_results = timed_sweep(
            batch_dir, "on", "off")

        # kernel-only instr/s: every cell as a lane, hot memos
        kernel = BatchKernel()
        for bench in benchmarks:
            workload = build_workload(bench)
            trace = store.load(workload, instructions)
            for prefetcher in prefetchers:
                system = System(workload, SystemConfig(
                    prefetcher=prefetcher),
                    replay=TraceReplaySource(workload, trace))
                kernel.add_lane(system, instructions)
        start = time.perf_counter()
        kernel.run()
        kernel_seconds = time.perf_counter() - start

    identical = [r.as_dict() for r in lockstep_results] == [
        r.as_dict() for r in batch_results
    ]
    return {
        "runs": len(requests),
        "benchmarks": list(benchmarks),
        "prefetchers": list(prefetchers),
        "instructions_per_run": instructions,
        "lockstep_seconds": lockstep_seconds,
        "record_seconds": record_seconds,
        "batch_seconds": batch_seconds,
        "replay_seconds": replay_seconds,
        "warm_cache_seconds": warm_cache_seconds,
        "batch_speedup": (
            lockstep_seconds / batch_seconds if batch_seconds else 0.0
        ),
        "batch_vs_replay_speedup": (
            replay_seconds / batch_seconds if batch_seconds else 0.0
        ),
        "repeated_sweep_speedup": (
            lockstep_seconds / warm_cache_seconds
            if warm_cache_seconds else 0.0
        ),
        "batch_instr_per_sec": (
            len(requests) * instructions / kernel_seconds
            if kernel_seconds else 0.0
        ),
        "results_identical": identical,
        "counters": counters,
    }


def run_perf_suite(benchmark="libquantum", instructions=30_000,
                   sweep_benchmarks=None, sweep_instructions=10_000,
                   jobs=4, label=None, policy=None, serve=False,
                   serve_instructions=4_000, trace_replay=False,
                   trace_replay_instructions=10_000, batch=False,
                   batch_instructions=10_000, load=False,
                   load_requests=10_000, load_clients=32,
                   load_instructions=2_000):
    """Run the component timings (and optional sweep); returns the payload.

    :param sweep_benchmarks: iterable of benchmark names to include in the
        serial-vs-parallel sweep comparison; None/empty skips the sweep.
    :param policy: optional :class:`~repro.resilience.FailurePolicy` for
        the sweep passes (retries/timeouts on flaky hosts).
    :param serve: when true, also run :func:`bench_serve` and
        :func:`bench_fleet`, attaching the job-server round-trip
        numbers under ``serve`` and the fleet scaling/chaos phases
        under ``fleet``.
    :param trace_replay: when true, also run :func:`bench_trace_replay`
        and attach its record/replay/repeated-sweep numbers under the
        ``trace_replay`` key.
    :param batch: when true, also run :func:`bench_batch` and attach
        the SoA batch-kernel numbers under the ``batch`` key.
    :param load: when true, also run :func:`bench_load` and attach the
        cluster-tier zipf load-generator numbers (jobs/s, p50/p99,
        cache-peer hit rate at 1 vs 2 nodes, with and without chaos)
        under the ``load`` key.
    """
    payload = {
        "schema": SCHEMA,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "label": label,
        "host": host_info(),
        "benchmark": benchmark,
        "components": {
            component: bench_component(component, benchmark, instructions)
            for component in COMPONENTS
        },
    }
    if sweep_benchmarks:
        payload["sweep"] = bench_sweep(
            sweep_benchmarks, instructions=sweep_instructions, jobs=jobs,
            policy=policy,
        )
    if serve:
        payload["serve"] = bench_serve(instructions=serve_instructions)
        payload["fleet"] = bench_fleet(instructions=serve_instructions)
    if trace_replay:
        payload["trace_replay"] = bench_trace_replay(
            instructions=trace_replay_instructions, policy=policy,
        )
    if batch:
        payload["batch"] = bench_batch(
            instructions=batch_instructions, policy=policy,
        )
    if load:
        payload["load"] = bench_load(
            requests=load_requests, clients=load_clients,
            instructions=load_instructions,
        )
    return payload


def default_output_dir():
    """``benchmarks/perf/`` when run from a repo checkout, else the CWD."""
    candidate = os.path.join(os.getcwd(), "benchmarks", "perf")
    if os.path.isdir(os.path.join(os.getcwd(), "benchmarks")):
        return candidate
    return os.getcwd()


def write_bench_json(payload, out_path=None):
    """Write *payload* to ``BENCH_<utc timestamp>.json``; returns the path."""
    if out_path is None:
        stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y%m%d_%H%M%S"
        )
        out_path = os.path.join(default_output_dir(), "BENCH_%s.json" % stamp)
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out_path


def render_summary(payload):
    """Human-readable one-screen summary of a perf payload."""
    lines = ["perf suite: %s @ %d instructions"
             % (payload["benchmark"],
                payload["components"]["functional"]["instructions"])]
    for component in COMPONENTS:
        row = payload["components"][component]
        lines.append(
            "  %-12s %12.0f instr/s  (%.3fs)"
            % (component, row["instr_per_sec"], row["seconds"])
        )
    sweep = payload.get("sweep")
    if sweep:
        lines.append(
            "  sweep: %d runs  serial %.2fs  parallel(%d jobs) %.2fs  "
            "speedup %.2fx  identical=%s"
            % (sweep["runs"], sweep["serial_seconds"], sweep["jobs"],
               sweep["parallel_seconds"], sweep["parallel_speedup"],
               sweep["results_identical"])
        )
    trace_replay = payload.get("trace_replay")
    if trace_replay:
        lines.append(
            "  trace-replay: %d runs  lockstep %.2fs  record %.2fs  "
            "replay %.2fs (%.2fx)  repeated sweep %.2fs (%.2fx)  "
            "identical=%s"
            % (trace_replay["runs"], trace_replay["lockstep_seconds"],
               trace_replay["record_seconds"],
               trace_replay["replay_seconds"],
               trace_replay["replay_speedup"],
               trace_replay["warm_cache_seconds"],
               trace_replay["repeated_sweep_speedup"],
               trace_replay["results_identical"])
        )
    batch = payload.get("batch")
    if batch:
        lines.append(
            "  batch: %d runs  lockstep %.2fs  batch %.2fs (%.2fx)  "
            "vs-replay %.2fx  repeated sweep %.2fs (%.2fx)  identical=%s"
            % (batch["runs"], batch["lockstep_seconds"],
               batch["batch_seconds"], batch["batch_speedup"],
               batch["batch_vs_replay_speedup"],
               batch["warm_cache_seconds"],
               batch["repeated_sweep_speedup"],
               batch["results_identical"])
        )
    serve = payload.get("serve")
    if serve:
        lines.append(
            "  serve: %d jobs/phase  uncached %.2f jobs/s  "
            "cached %.2f jobs/s"
            % (serve["jobs_per_phase"], serve["uncached_jobs_per_sec"],
               serve["cached_jobs_per_sec"])
        )
        for series in ("computed", "cached"):
            block = serve["latency"].get(series) or {}
            if block:
                lines.append(
                    "    latency.%-8s p50 %.4fs  p95 %.4fs  mean %.4fs"
                    % (series, block.get("p50", 0.0),
                       block.get("p95", 0.0), block.get("mean", 0.0))
                )
    fleet = payload.get("fleet")
    if fleet:
        lines.append(
            "  fleet: %d jobs/phase  chaos=%s"
            % (fleet["phases"][0]["jobs"], fleet["chaos_spec"])
        )
        for row in fleet["phases"]:
            lines.append(
                "    %d worker%s %-7s %6.2f jobs/s  p50 %.4fs  "
                "p99 %.4fs  respawns %s"
                % (row["workers"], "s" if row["workers"] != 1 else " ",
                   "chaos" if row["chaos"] else "clean",
                   row["jobs_per_sec"], row["latency_p50"] or 0.0,
                   row["latency_p99"] or 0.0, row["respawns"])
            )
    load = payload.get("load")
    if load:
        lines.append(
            "  load: %d submissions  %d clients  zipf(s=%.2f) over "
            "%d cells  chaos=%s"
            % (load["requests"], load["clients"], load["zipf_s"],
               load["universe"], load["chaos_spec"])
        )
        for row in load["phases"]:
            rate = row.get("peer_hit_rate")
            lines.append(
                "    %d node%s %-7s %8.2f subs/s  %6.2f jobs/s  "
                "p50 %.4fs  p99 %.4fs  coalesce %.2f  peer-hit %s  "
                "steals %s  requeues %s"
                % (row["nodes"], "s" if row["nodes"] != 1 else " ",
                   "chaos" if row["chaos"] else "clean",
                   row["submissions_per_sec"], row["jobs_per_sec"],
                   row["latency_p50"] or 0.0, row["latency_p99"] or 0.0,
                   row["coalesce_rate"],
                   "%.2f" % rate if rate is not None else "-",
                   row["steals"], row["requeues"])
            )
    return "\n".join(lines)
