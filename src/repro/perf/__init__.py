"""Performance micro-harness: simulated-instructions-per-second tracking."""

from repro.perf.harness import (
    COMPONENTS,
    bench_component,
    bench_fleet,
    bench_serve,
    bench_sweep,
    bench_trace_replay,
    default_output_dir,
    run_perf_suite,
    write_bench_json,
)

__all__ = [
    "COMPONENTS",
    "bench_component",
    "bench_fleet",
    "bench_serve",
    "bench_sweep",
    "bench_trace_replay",
    "default_output_dir",
    "run_perf_suite",
    "write_bench_json",
]
