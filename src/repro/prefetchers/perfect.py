"""Perfect-prefetcher oracle for the Fig. 1 limit study.

The paper defines the perfect prefetcher as one under which "all memory
accesses complete as if they were first level cache hits".  Rather than
enqueueing oracle prefetches, the timing core recognises ``is_perfect``
and charges every demand load the L1 hit latency, while still performing
the real hierarchy access so cache state, DRAM bandwidth and statistics
stay live.
"""

from repro.prefetchers.base import Prefetcher


class PerfectPrefetcher(Prefetcher):
    """Marker prefetcher: all loads behave as L1 hits."""

    name = "perfect"
    is_perfect = True

    def storage_bits(self):
        return 0
