"""Spatio-Temporal Memory Streaming (Somogyi et al., ISCA 2009) -- simplified.

The paper's second heavy-weight reference: STeMS extends SMS with the
*temporal* ordering of spatial-region generations, reconstructing the
expected miss sequence across regions and streaming several regions
ahead of the trigger.

Mechanism kept: an SMS-style spatial pattern store plus a temporal log
of trigger events; when a trigger re-occurs at a logged position, the
next ``stream_ahead`` logged generations (regions + their patterns) are
replayed in order.  Like the original's multi-megabyte off-chip
metadata, the temporal log grows with the footprint and its size is
surfaced by :meth:`storage_bits` rather than capped.
"""

from repro.prefetchers.sms import SMSConfig, SMSPrefetcher


class STeMSPrefetcher(SMSPrefetcher):
    """SMS + temporal streaming of whole spatial generations."""

    name = "stems"

    def __init__(self, config=None, stream_ahead=4, queue_capacity=100):
        super().__init__(config or SMSConfig(), queue_capacity)
        self.stream_ahead = stream_ahead
        self.temporal_log = []      # ordered (region, trigger key) events
        self._log_position = {}     # trigger key -> last log index
        self._replay_limit = 4096   # guard against degenerate loops

    def _train(self, pc, addr, hit, now):
        region_before = addr >> self._region_shift
        was_tracked = region_before in self.agt
        super()._train(pc, addr, hit, now)
        if hit or was_tracked:
            return
        # a new generation started: log it temporally and replay forward
        offset = (addr >> self._block_shift) & self._offset_mask
        key = self._trigger_key(pc, offset)
        position = self._log_position.get(key)
        self.temporal_log.append((region_before, key))
        self._log_position[key] = len(self.temporal_log) - 1
        if position is None:
            return
        for event_index in range(position + 1,
                                 min(position + 1 + self.stream_ahead,
                                     len(self.temporal_log) - 1)):
            region, event_key = self.temporal_log[event_index]
            slot, tag = self._pht_slot(event_key)
            stored = self.pht.get(slot)
            if stored is None or stored[0] != tag:
                continue
            base = region << self._region_shift
            pattern = stored[1]
            while pattern:
                low = pattern & -pattern
                self.push(base + (low.bit_length() - 1)
                          * self.config.block_bytes, pc & 0x3FF)
                pattern ^= low

    def snapshot(self):
        """SMS state plus the temporal log and its position index."""
        state = super().snapshot()
        state["temporal_log"] = [[region, key]
                                 for region, key in self.temporal_log]
        state["log_position"] = [[key, index]
                                 for key, index in self._log_position.items()]
        return state

    def restore(self, state):
        """Restore prefetcher state from :meth:`snapshot` output."""
        super().restore(state)
        self.temporal_log = [(int(region), int(key))
                             for region, key in state["temporal_log"]]
        self._log_position = {int(key): index
                              for key, index in state["log_position"]}

    def storage_bits(self):
        """On-chip SMS state plus the grown temporal metadata (~60 bits
        per logged event, off-chip in the original)."""
        return super().storage_bits() + len(self.temporal_log) * 60
