"""Per-PC stride prefetcher (Chen & Baer reference prediction table).

Each load PC owns an RPT entry holding its last address, last stride and a
2-bit state machine (initial -> transient -> steady).  When a load re-hits
its learned stride in the *steady* state, the prefetcher runs ahead of it.
The paper found degree 8 ("prefetching the next 8 strided addresses") to
perform best, so that is the default.

Training and issue both happen on *misses*, per the paper's description
("it attempts to identify simple stride reference patterns in programs
based upon the past behavior of missing loads ... when a given load
misses, cache lines ahead of that miss are fetched in the pattern
following the previous behavior").  Miss-to-miss training gives the
stop-start coverage -- and the modest overall gains -- the paper reports
for this prefetcher.
"""

from repro.prefetchers.base import Prefetcher

_INITIAL, _TRANSIENT, _STEADY = 0, 1, 2


class _Entry:
    __slots__ = ("tag", "last_addr", "stride", "state")

    def __init__(self, tag, last_addr):
        self.tag = tag
        self.last_addr = last_addr
        self.stride = 0
        self.state = _INITIAL


class StridePrefetcher(Prefetcher):
    """Reference prediction table, direct-mapped by load PC.

    :param entries: RPT size (power of two).
    :param degree: prefetch depth in strides (8 per the paper).
    """

    name = "stride"

    def __init__(self, entries=256, degree=8, block_bytes=64, queue_capacity=100):
        super().__init__(queue_capacity, block_bytes)
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.degree = degree
        self.table = [None] * entries
        self._mask = entries - 1

    def on_load(self, pc, addr, hit, now):
        if hit:
            return
        index = (pc >> 2) & self._mask
        tag = pc >> 2
        entry = self.table[index]
        if entry is None or entry.tag != tag:
            self.table[index] = _Entry(tag, addr)
            return
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            entry.state = _STEADY if entry.state != _INITIAL else _TRANSIENT
            if entry.state == _STEADY and not hit:
                for step in range(1, self.degree + 1):
                    self.push(addr + stride * step)
        else:
            # stride broke: re-learn
            entry.stride = stride
            entry.state = _TRANSIENT if entry.state == _STEADY else _INITIAL
        entry.last_addr = addr

    def snapshot(self):
        """Base state plus the reference prediction table."""
        state = super().snapshot()
        state["table"] = [
            None if entry is None
            else [entry.tag, entry.last_addr, entry.stride, entry.state]
            for entry in self.table
        ]
        return state

    def restore(self, state):
        """Restore prefetcher state from :meth:`snapshot` output."""
        super().restore(state)
        table = [None] * self.entries
        for index, fields in enumerate(state["table"]):
            if fields is None:
                continue
            tag, last_addr, stride, entry_state = fields
            entry = _Entry(tag, last_addr)
            entry.stride = stride
            entry.state = entry_state
            table[index] = entry
        self.table = table

    def storage_bits(self):
        # tag(30) + last addr(32) + stride(16) + state(2) per entry
        return self.entries * (30 + 32 + 16 + 2)
