"""Irregular Stream Buffer (Jain & Lin, MICRO 2013) -- simplified.

The paper's heavy-weight comparison point: ISB introduces a level of
indirection that maps temporally-correlated *physical* addresses to
consecutive *structural* addresses, converting irregular prefetching
into sequential prefetching in structural space.  Miss streams are
localized by load PC; each PC's misses receive consecutive structural
addresses, and on a subsequent miss the prefetcher walks the structural
neighbours and issues their physical translations.

Faithful aspects: PC localization, PS/SP bidirectional maps, structural-
space sequential prefetch, and the *unbounded metadata* -- the maps grow
with the footprint, standing in for the original's ~8MB of off-chip
storage (tracked by :meth:`storage_bits`, and reported in the
heavy-weight comparison bench).  Simplified aspects: no on-chip TLB-sync
cache of the maps and no eviction, so this is an upper bound on ISB's
reach, with its storage cost made explicit.
"""

from repro.prefetchers.base import Prefetcher

_CHUNK = 256  # structural addresses reserved per new stream segment


class ISBPrefetcher(Prefetcher):
    """Structural-address-space prefetcher with per-PC stream localization."""

    name = "isb"

    def __init__(self, degree=3, block_bytes=64, queue_capacity=100):
        super().__init__(queue_capacity, block_bytes)
        self.degree = degree
        self.ps = {}          # physical block -> structural address
        self.sp = {}          # structural address -> physical block
        self._next_chunk = 0  # structural space allocator
        self._stream_head = {}  # load pc -> next structural address

    def _allocate(self, pc):
        """Next structural address in this PC's stream, opening a fresh
        chunk for streams that have none yet."""
        head = self._stream_head.get(pc)
        if head is None:
            head = self._next_chunk * _CHUNK
            self._next_chunk += 1
        self._stream_head[pc] = head + 1
        return head

    def on_load(self, pc, addr, hit, now):
        if hit:
            return
        block = addr >> 6
        structural = self.ps.get(block)
        if structural is None:
            structural = self._allocate(pc)
            self.ps[block] = structural
            self.sp[structural] = block
        else:
            # re-seen block: future allocations for this PC continue here,
            # re-linking the stream the way ISB's training unit does
            self._stream_head[pc] = structural + 1
        for step in range(1, self.degree + 1):
            neighbour = self.sp.get(structural + step)
            if neighbour is not None:
                self.push(neighbour << 6, pc & 0x3FF)

    def snapshot(self):
        """Base state plus the PS/SP maps and stream heads."""
        state = super().snapshot()
        state["ps"] = [[block, structural]
                       for block, structural in self.ps.items()]
        state["sp"] = [[structural, block]
                       for structural, block in self.sp.items()]
        state["next_chunk"] = self._next_chunk
        state["stream_head"] = [[pc, head]
                                for pc, head in self._stream_head.items()]
        return state

    def restore(self, state):
        """Restore prefetcher state from :meth:`snapshot` output."""
        super().restore(state)
        self.ps = {int(block): structural
                   for block, structural in state["ps"]}
        self.sp = {int(structural): block
                   for structural, block in state["sp"]}
        self._next_chunk = state["next_chunk"]
        self._stream_head = {int(pc): head
                             for pc, head in state["stream_head"]}

    def storage_bits(self):
        """Metadata footprint: both maps at ~58 bits per mapping.

        Unbounded by design -- the original keeps this off-chip (8MB) and
        additionally pays ~8.4% memory traffic to shuttle it; we surface
        the grown size instead.
        """
        return (len(self.ps) + len(self.sp)) * 58
