"""Common prefetcher interface.

The timing core raises events as the instruction stream is processed; a
prefetcher reacts by pushing block addresses into its bounded
:class:`~repro.memory.PrefetchQueue`.  The system drains that queue into
the memory hierarchy at a limited rate and routes usefulness feedback
(useful / late / useless) back through :meth:`Prefetcher.feedback`.

Miss-driven designs (next-n, stride, SMS) only implement ``on_load``;
pipeline-driven designs (B-Fetch, Tango) also use ``on_branch_decode`` and
``on_commit``.
"""

from collections import OrderedDict

from repro.memory.prefetch_queue import PrefetchQueue
from repro.memory.stats import PrefetchStats

_RECENT_BLOCKS = 256  # issue-side dedup window (blocks)

# queue meta sentinel marking an instruction-side (L1I) prefetch request
IFETCH_META = ("ifetch",)


class Prefetcher:
    """Base class with no-op hooks; a "no prefetching" baseline as-is.

    :param queue_capacity: bounded request queue size (Table I: 100).
    :param block_bytes: cache-line size used for issue-side dedup; must
        match the L1 line size of the hierarchy the prefetcher feeds
        (the factory passes ``HierarchyConfig.block_bytes`` through).
    """

    name = "none"
    is_perfect = False

    def __init__(self, queue_capacity=100, block_bytes=64):
        shift = block_bytes.bit_length() - 1
        if 1 << shift != block_bytes:
            raise ValueError("block size must be a power of two, got %r"
                             % (block_bytes,))
        self.block_bytes = block_bytes
        self.block_shift = shift
        self.stats = PrefetchStats()
        self.queue = PrefetchQueue(queue_capacity)
        # recently-requested block filter: overlapping lookahead windows
        # (every walk re-covers the previous walk's blocks shifted by one)
        # would otherwise flood the bounded queue with repeats and starve
        # the genuinely new requests at the front of the stream
        self._recent = OrderedDict()
        # tracing: None when the "prefetch" category is disabled, so the
        # drain loop pays a single identity test per issued request
        self._trace_prefetch = None

    def bind_tracer(self, tracer):
        """Cache the tracer's ``prefetch`` channel (None disables)."""
        self._trace_prefetch = (
            tracer.channel("prefetch") if tracer is not None else None
        )

    # ------------------------------------------------------------------
    # events raised by the timing core / system

    def on_load(self, pc, addr, hit, now):
        """A demand load at *pc* touched byte *addr* (L1 hit flag given)."""

    def on_store(self, pc, addr, hit, now):
        """A demand store; most prefetchers ignore stores."""

    def on_branch_decode(self, pc, pred_taken, target, now):
        """A branch was decoded in the main pipeline (B-Fetch trigger)."""

    def on_commit(self, instr, ea, taken, next_pc, regs, now):
        """An instruction committed, with its architectural side effects.

        *next_pc* is the actual following PC (the resolved target for taken
        branches); *regs* is the live architectural register file
        (read-only use).
        """

    def on_l1d_eviction(self, addr, line):
        """An L1D line was evicted (SMS generation tracking)."""

    def feedback(self, meta, outcome):
        """A prefetched block resolved: outcome in {useful, late, useless}.

        The three counters are disjoint -- a resolved prefetch lands in
        exactly one bucket (``late`` is *not* also counted as
        ``useful``; derived accuracy/timeliness live on
        :class:`~repro.memory.PrefetchStats` and as Ratio stats in the
        registry).
        """
        if outcome == "useful":
            self.stats.useful += 1
        elif outcome == "late":
            self.stats.late += 1
        elif outcome == "useless":
            self.stats.useless += 1
        else:
            raise ValueError("unknown prefetch outcome %r" % outcome)

    # ------------------------------------------------------------------
    # issuing

    def push(self, addr, meta=None):
        """Queue a prefetch request for the block containing *addr*.

        Requests whose block was pushed within the last
        :data:`_RECENT_BLOCKS` distinct blocks are suppressed as
        duplicates.  The block number derives from the configured line
        size (``block_shift``), not a hard-coded 64-byte geometry.
        """
        block = addr >> self.block_shift
        recent = self._recent
        if block in recent:
            recent.move_to_end(block)
            self.stats.duplicate += 1
            return
        recent[block] = True
        if len(recent) > _RECENT_BLOCKS:
            recent.popitem(last=False)
        before = self.queue.drops
        self.queue.push(addr, meta)
        self.stats.dropped += self.queue.drops - before

    def push_instr(self, addr):
        """Queue an instruction-side (L1I) prefetch request."""
        self.push(addr, IFETCH_META)

    def drain(self, hierarchy, now, allowance):
        """Issue up to *allowance* queued requests into *hierarchy*."""
        pop = self.queue.pop
        issue = hierarchy.prefetch
        trace = self._trace_prefetch
        for _ in range(allowance):
            request = pop()
            if request is None:
                break
            addr, meta = request
            ifetch = meta is IFETCH_META
            if ifetch:
                issued = hierarchy.prefetch_instr(addr, now)
            else:
                issued = issue(addr, now, meta)
            if issued:
                self.stats.issued += 1
            else:
                self.stats.duplicate += 1
            if trace is not None:
                trace.emit("issue", now, addr=addr, issued=issued,
                           ifetch=ifetch, pf=self.name)

    # ------------------------------------------------------------------

    def storage_bits(self):
        """Prefetcher state budget in bits (Table-I accounting)."""
        return 0

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Base prefetcher state (stats, queue, dedup window).

        Subclasses extend the returned dict with their private tables;
        the ``_recent`` OrderedDict keeps its insertion order (it decides
        which block falls out of the dedup window next).
        """
        return {
            "stats": self.stats.as_dict(),
            "queue": self.queue.snapshot(),
            "recent": list(self._recent),
        }

    def restore(self, state):
        """Restore base prefetcher state from :meth:`snapshot` output."""
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        self.queue.restore(state["queue"])
        self._recent = OrderedDict((block, True)
                                   for block in state["recent"])

    def reset_stats(self):
        # reset in place: the stats object may be adopted by a
        # StatsRegistry, which holds a live reference to it
        self.stats.reset()
