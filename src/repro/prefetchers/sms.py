"""Spatial Memory Streaming (Somogyi et al., ISCA 2006).

SMS learns, per (trigger PC, region offset), the *pattern* of cache blocks
an application touches inside a fixed-size spatial region, and replays the
whole pattern when the same trigger recurs in a new region.

Structures (paper Section IV-C / Table I configuration):

* **Active Generation Table (AGT)**, 64 entries -- regions currently being
  recorded.  A generation begins on a demand miss that starts a new region
  and ends when any block of the region leaves the L1 (eviction) or the
  AGT entry is displaced; at that point the accumulated bit pattern is
  committed to the PHT under the generation's trigger key.
* **Pattern History Table (PHT)**, 16K entries -- learned patterns indexed
  by a hash of (trigger PC, offset-in-region).

The paper's separate filtering table is omitted, matching the optimisation
the authors describe (duplicate suppression via the AGT bit vectors).
"""

from repro.prefetchers.base import Prefetcher


class SMSConfig:
    """SMS geometry: 2KB regions, 64-entry AGT, 16K-entry PHT (paper's
    best practical configuration)."""

    def __init__(self, region_bytes=2048, agt_entries=64, pht_entries=16384,
                 block_bytes=64, pht_tag_bits=4):
        if region_bytes % block_bytes:
            raise ValueError("region must be a multiple of the block size")
        self.region_bytes = region_bytes
        self.agt_entries = agt_entries
        self.pht_entries = pht_entries
        self.block_bytes = block_bytes
        self.blocks_per_region = region_bytes // block_bytes
        # Table I budgets 36KB for 16K entries = 18 bits/entry; with a
        # 32-block pattern that leaves only a ~4-bit partial tag, so PHT
        # aliasing (replaying the wrong trigger's pattern) is part of the
        # design point
        self.pht_tag_bits = pht_tag_bits


class _Generation:
    __slots__ = ("trigger_key", "pattern", "lru")

    def __init__(self, trigger_key, pattern, lru):
        self.trigger_key = trigger_key
        self.pattern = pattern
        self.lru = lru


class SMSPrefetcher(Prefetcher):
    """Spatial Memory Streaming over the configured region size."""

    name = "sms"

    def __init__(self, config=None, queue_capacity=100):
        self.config = config or SMSConfig()
        cfg = self.config
        super().__init__(queue_capacity, cfg.block_bytes)
        self._region_shift = cfg.region_bytes.bit_length() - 1
        if 1 << self._region_shift != cfg.region_bytes:
            raise ValueError("region size must be a power of two")
        self._block_shift = self.block_shift
        self._offset_mask = cfg.blocks_per_region - 1
        self.agt = {}  # region base -> _Generation
        self.pht = {}  # slot index -> (tag, pattern)
        self._tick = 0

    # ------------------------------------------------------------------

    def _trigger_key(self, pc, offset):
        return ((pc >> 2) << 6) ^ offset

    def _pht_slot(self, key):
        slot = key % self.config.pht_entries
        tag = (key // self.config.pht_entries) & (
            (1 << self.config.pht_tag_bits) - 1
        )
        return slot, tag

    def _commit_generation(self, generation):
        """Store a finished generation's pattern into the PHT."""
        slot, tag = self._pht_slot(generation.trigger_key)
        self.pht[slot] = (tag, generation.pattern)

    def _end_generation(self, region):
        generation = self.agt.pop(region, None)
        if generation is not None:
            self._commit_generation(generation)

    # ------------------------------------------------------------------

    def _train(self, pc, addr, hit, now):
        cfg = self.config
        region = addr >> self._region_shift
        offset = (addr >> self._block_shift) & self._offset_mask
        self._tick += 1
        generation = self.agt.get(region)
        if generation is not None:
            generation.pattern |= 1 << offset
            generation.lru = self._tick
            return
        if hit:
            # hits outside an active generation carry no new information
            return
        # a miss in an untracked region: new generation
        key = self._trigger_key(pc, offset)
        slot, tag = self._pht_slot(key)
        stored = self.pht.get(slot)
        if stored is not None and stored[0] == tag:
            region_base = region << self._region_shift
            pattern = stored[1] & ~(1 << offset)
            meta = pc & 0x3FF
            while pattern:
                low = pattern & -pattern
                self.push(region_base + (low.bit_length() - 1) * cfg.block_bytes,
                          meta)
                pattern ^= low
        if len(self.agt) >= cfg.agt_entries:
            victim = min(self.agt, key=lambda r: self.agt[r].lru)
            self._commit_generation(self.agt.pop(victim))
        self.agt[region] = _Generation(key, 1 << offset, self._tick)

    def on_load(self, pc, addr, hit, now):
        self._train(pc, addr, hit, now)

    def on_store(self, pc, addr, hit, now):
        self._train(pc, addr, hit, now)

    def on_l1d_eviction(self, addr, line):
        """A block leaving L1 ends its region's generation (SMS rule)."""
        self._end_generation(addr >> self._region_shift)

    # ------------------------------------------------------------------

    def snapshot(self):
        """Base state plus AGT generations and PHT patterns.

        AGT insertion order is preserved (its LRU victim scan iterates
        the dict, so ties break on order); the PHT is keyed by int slot.
        """
        state = super().snapshot()
        state["agt"] = [
            [region, [gen.trigger_key, gen.pattern, gen.lru]]
            for region, gen in self.agt.items()
        ]
        state["pht"] = [[slot, list(entry)]
                        for slot, entry in self.pht.items()]
        state["tick"] = self._tick
        return state

    def restore(self, state):
        """Restore prefetcher state from :meth:`snapshot` output."""
        super().restore(state)
        self.agt = {
            int(region): _Generation(fields[0], fields[1], fields[2])
            for region, fields in state["agt"]
        }
        self.pht = {int(slot): tuple(entry)
                    for slot, entry in state["pht"]}
        self._tick = state["tick"]

    def storage_bits(self):
        cfg = self.config
        # AGT: region tag(26) + trigger key(32) + pattern + lru(4)
        agt_bits = cfg.agt_entries * (26 + 32 + cfg.blocks_per_region + 4)
        # PHT: partial tag + raw pattern.  (Table I's 36KB assumes the
        # pattern is stored compressed to ~14 bits; we model the raw
        # vector and report the uncompressed size here -- the Table I
        # reproduction in repro.analysis.overhead uses the paper's
        # 18-bit-per-entry budget.)
        pht_bits = cfg.pht_entries * (cfg.pht_tag_bits
                                      + cfg.blocks_per_region)
        return agt_bits + pht_bits
