"""Data prefetchers: the paper's comparison points and the common interface.

* :class:`~repro.prefetchers.base.Prefetcher` -- event-hook interface all
  prefetchers (including B-Fetch in :mod:`repro.core`) implement.
* :class:`NextNPrefetcher` -- next-n-lines (Smith).
* :class:`StridePrefetcher` -- per-PC reference prediction table
  (Chen & Baer), degree 8 as tuned in the paper.
* :class:`SMSPrefetcher` -- Spatial Memory Streaming (Somogyi et al.), the
  paper's "best-of-class light-weight" comparison.
* :class:`PerfectPrefetcher` -- the Fig. 1 oracle (every load is an L1 hit).
* :class:`TangoPrefetcher` -- branch-directed prefetching off *effective
  address* history (Pinter & Yoaz), the related-work foil for B-Fetch's
  register-based address speculation.
"""

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.nextn import NextNPrefetcher
from repro.prefetchers.stride import StridePrefetcher
from repro.prefetchers.sms import SMSConfig, SMSPrefetcher
from repro.prefetchers.perfect import PerfectPrefetcher
from repro.prefetchers.tango import TangoPrefetcher
from repro.prefetchers.isb import ISBPrefetcher
from repro.prefetchers.stems import STeMSPrefetcher

__all__ = [
    "Prefetcher",
    "NextNPrefetcher",
    "StridePrefetcher",
    "SMSPrefetcher",
    "SMSConfig",
    "PerfectPrefetcher",
    "TangoPrefetcher",
    "ISBPrefetcher",
    "STeMSPrefetcher",
]
