"""Next-N-lines sequential prefetcher (Smith, 1978).

On every demand miss, queue the next *n* sequential cache blocks.  The
cheapest design in the light-weight class; included as the paper's
"Next-n" reference point and as a sanity baseline in the ablations.
"""

from repro.prefetchers.base import Prefetcher


class NextNPrefetcher(Prefetcher):
    """Prefetch the *n* blocks following each missing block."""

    name = "nextn"

    def __init__(self, n=4, block_bytes=64, queue_capacity=100):
        super().__init__(queue_capacity, block_bytes)
        self.n = n

    def on_load(self, pc, addr, hit, now):
        if hit:
            return
        base = addr & ~(self.block_bytes - 1)
        for step in range(1, self.n + 1):
            self.push(base + step * self.block_bytes)

    def storage_bits(self):
        return 8  # a degree register; effectively stateless
