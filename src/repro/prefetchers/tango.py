"""Tango-style branch-directed prefetcher (Pinter & Yoaz, MICRO 1996).

Tango, like B-Fetch, is triggered by branches rather than misses, but it
speculates the next effective address of each load in the upcoming basic
block from the load's *previous effective address plus a learned delta* --
not from current register state.  The paper (Section III-C) credits this
difference for B-Fetch's accuracy advantage; this implementation exists to
back that claim with an ablation (``benchmarks/test_ablations.py``).

Model: a direct-mapped table keyed by (branch PC, direction, target)
holding up to three (load PC, last EA, delta) tuples for the basic block
the branch leads to.  On branch decode the predicted-path entry's loads
are prefetched at ``last_ea + delta``; training happens at commit.
"""

from repro.prefetchers.base import Prefetcher

_MAX_LOADS = 3


class _BlockEntry:
    __slots__ = ("tag", "loads")

    def __init__(self, tag):
        self.tag = tag
        self.loads = {}  # load pc -> [last_ea, delta]


class TangoPrefetcher(Prefetcher):
    """Branch-directed prefetching from effective-address history."""

    name = "tango"

    def __init__(self, entries=256, block_bytes=64, queue_capacity=100):
        super().__init__(queue_capacity, block_bytes)
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.table = [None] * entries
        self._mask = entries - 1
        self._last_branch_key = None

    # ------------------------------------------------------------------

    @staticmethod
    def _key(pc, taken, target):
        return (pc >> 2) ^ ((0x9E3779B1 * target) & 0xFFFFFFFF) ^ (
            0x55555555 if taken else 0
        )

    def _entry(self, key, allocate):
        index = key & self._mask
        entry = self.table[index]
        if entry is None or entry.tag != key:
            if not allocate:
                return None
            entry = _BlockEntry(key)
            self.table[index] = entry
        return entry

    # ------------------------------------------------------------------

    def on_branch_decode(self, pc, pred_taken, target, now):
        fallthrough = pc + 4
        key = self._key(pc, pred_taken, target if pred_taken else fallthrough)
        entry = self._entry(key, allocate=False)
        if entry is None:
            return
        for load_pc, (last_ea, delta) in entry.loads.items():
            self.push(last_ea + delta, load_pc & 0x3FF)

    def on_commit(self, instr, ea, taken, next_pc, regs, now):
        if instr.is_branch:
            self._last_branch_key = self._key(instr.pc, taken, next_pc)
            return
        if not instr.is_load or self._last_branch_key is None:
            return
        entry = self._entry(self._last_branch_key, allocate=True)
        record = entry.loads.get(instr.pc)
        if record is None:
            if len(entry.loads) >= _MAX_LOADS:
                return
            entry.loads[instr.pc] = [ea, 0]
        else:
            record[1] = ea - record[0]
            record[0] = ea

    def snapshot(self):
        """Base state plus the block table and last-branch key."""
        state = super().snapshot()
        state["table"] = [
            None if entry is None
            else [entry.tag,
                  [[load_pc, list(record)]
                   for load_pc, record in entry.loads.items()]]
            for entry in self.table
        ]
        state["last_branch_key"] = self._last_branch_key
        return state

    def restore(self, state):
        """Restore prefetcher state from :meth:`snapshot` output."""
        super().restore(state)
        table = [None] * self.entries
        for index, fields in enumerate(state["table"]):
            if fields is None:
                continue
            entry = _BlockEntry(fields[0])
            # records stay mutable lists: training updates them in place
            entry.loads = {int(load_pc): list(record)
                           for load_pc, record in fields[1]}
            table[index] = entry
        self.table = table
        self._last_branch_key = state["last_branch_key"]

    def storage_bits(self):
        # tag(32) + 3 x (pc tag 10 + ea 32 + delta 16)
        return self.entries * (32 + _MAX_LOADS * (10 + 32 + 16))
