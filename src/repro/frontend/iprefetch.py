"""Instruction-side (L1-I) prefetcher family.

Registered alongside the nine D-side prefetchers but selected through
the separate ``SystemConfig.iprefetcher`` axis, because the two families
compose: any D-side prefetcher can run with any I-side one.

* ``none``       -- inert placeholder (uniform stats, empty queue);
* ``nextline-i`` -- classic next-N-line on demand L1-I misses;
* ``fdip``       -- fetch-directed run-ahead: turns un-issued FTQ
  entries into L1-I prefetches ("Fetch-Directed Instruction
  Prefetching Revisited");
* ``bfetch-i``   -- the paper's B-Fetch-I future work: the BrTC
  lookahead walk re-targeted at fetch-block granularity, pushing the
  instruction blocks of predicted basic blocks;
* ``combined``   -- ``fdip`` + ``bfetch-i`` sharing one request queue.

All of them reuse the D-side :class:`~repro.prefetchers.Prefetcher`
substrate (bounded queue, recent-block dedup, stats, snapshot), but
their drain path issues only ``prefetch_instr`` fills and notifies the
predecoder so prefetched lines expose their shadow branches too.
"""

from repro.core.brtc import BranchTraceCache
from repro.core.config import BFetchConfig
from repro.core.hashing import bb_hash
from repro.isa.opcodes import IS_BRANCH as _IS_BRANCH
from repro.prefetchers.base import Prefetcher

IPREFETCHER_NAMES = ("none", "nextline-i", "fdip", "bfetch-i", "combined")


class IPrefetcher(Prefetcher):
    """I-side base: an inert queue; doubles as the ``none`` selection.

    :param config: :class:`~repro.frontend.FrontendConfig`.
    :param block_bytes: L1-I line size (fetch-block geometry).
    """

    name = "none"

    def __init__(self, config, block_bytes=64):
        super().__init__(queue_capacity=config.queue_capacity,
                         block_bytes=block_bytes)
        self.config = config
        # set by the front end: fn(addr) called on every issued fill so
        # prefetched lines get predecoded like demand fills
        self.predecode = None

    # ------------------------------------------------------------------
    # front-end events

    def on_ifetch(self, pc, hit, now):
        """A demand instruction fetch touched the block holding *pc*."""

    def on_ftq(self, ftq, now):
        """The BPU advanced; *ftq* is the live fetch target queue."""

    # ------------------------------------------------------------------

    def drain(self, hierarchy, now, allowance):
        """Issue up to *allowance* queued L1-I prefetches.

        Unlike the D-side drain, every request here is an instruction
        fill, and issued fills are handed to the predecoder.
        """
        pop = self.queue.pop
        issue = hierarchy.prefetch_instr
        predecode = self.predecode
        trace = self._trace_prefetch
        for _ in range(allowance):
            request = pop()
            if request is None:
                break
            addr = request[0]
            issued = issue(addr, now)
            if issued:
                self.stats.issued += 1
                if predecode is not None:
                    predecode(addr)
            else:
                self.stats.duplicate += 1
            if trace is not None:
                trace.emit("issue", now, addr=addr, issued=issued,
                           ifetch=True, pf=self.name)


class NextLineIPrefetcher(IPrefetcher):
    """Sequential next-N-line baseline, triggered by demand L1-I misses."""

    name = "nextline-i"

    def on_ifetch(self, pc, hit, now):
        if hit:
            return
        block_bytes = self.block_bytes
        block = (pc & ~(block_bytes - 1)) + block_bytes
        for _ in range(self.config.nextline_degree):
            self.push_instr(block)
            block += block_bytes


class _FTQRunAhead(object):
    """Mixin: turn un-issued FTQ entries into L1-I prefetches (FDIP)."""

    def on_ftq(self, ftq, now):
        cfg = self.config
        pending = ftq.pending(cfg.fdip_distance, cfg.fdip_degree)
        push = self.push_instr
        for entry in pending:
            entry[1] = True  # issued: never rescanned
            push(entry[0])


class FDIPPrefetcher(_FTQRunAhead, IPrefetcher):
    """Fetch-directed instruction prefetching off the FTQ."""

    name = "fdip"


class BFetchIPrefetcher(IPrefetcher):
    """B-Fetch-I: the BrTC lookahead walk at fetch-block granularity.

    Owns a private Branch Trace Cache trained at commit time (the same
    linking discipline as the D-side engine) and walks it on every
    decoded branch, pushing the instruction blocks of each predicted
    basic block -- instead of the D-side engine's MHT-derived data
    addresses -- while the inline PaCo path confidence gates the depth.
    """

    name = "bfetch-i"

    def __init__(self, config, block_bytes=64, bfetch_config=None):
        super().__init__(config, block_bytes=block_bytes)
        bf = bfetch_config or BFetchConfig()
        self.brtc = BranchTraceCache(bf.brtc_entries)
        self.path_confidence_threshold = bf.path_confidence_threshold
        self.max_lookahead = bf.max_lookahead
        self.max_instr_blocks = bf.max_instr_blocks
        self.predictor = None
        self.confidence = None
        self._prev_hash = None
        self._prev_tag = None
        self.walks = 0
        self.total_depth = 0

    def attach(self, predictor, confidence):
        """Connect the main pipeline's predictor and confidence
        estimator (same shared read ports as the D-side engine)."""
        self.predictor = predictor
        self.confidence = confidence

    # -- commit-time BrTC training ------------------------------------

    def on_commit(self, instr, ea, taken, next_pc, regs, now):
        if not _IS_BRANCH[instr.op]:
            return
        pc = instr.pc
        if instr.target is not None:
            taken_target = pc + 4 * (instr.target - instr.index)
        elif taken:
            taken_target = next_pc
        else:
            taken_target = None
        if self._prev_hash is not None:
            self.brtc.update(self._prev_hash, self._prev_tag, pc,
                             taken_target)
        self._prev_hash = bb_hash(pc, taken, next_pc)
        self._prev_tag = pc & 0xFFFFFFFF

    # -- decode-time lookahead walk -----------------------------------

    def on_branch_decode(self, pc, pred_taken, target, now):
        predictor = self.predictor
        if predictor is None:
            raise RuntimeError("BFetchIPrefetcher.attach() was never called")
        self.walks += 1
        threshold = self.path_confidence_threshold
        probability = self.confidence.probability
        spec_history = predictor.history
        path_value = probability(pc, spec_history)
        if path_value < threshold:
            return
        if pred_taken:
            if target is None:
                return  # indirect branch without a known target
            next_pc = target
        else:
            next_pc = pc + 4
        brtc_lookup = self.brtc.lookup
        predict = predictor.predict
        prefetch_range = self._prefetch_instr_range
        spec_history = (spec_history << 1) | (1 if pred_taken else 0)
        state_hash = bb_hash(pc, pred_taken, next_pc)
        state_tag = pc & 0xFFFFFFFF
        depth = 0
        entry_pc = next_pc
        while depth < self.max_lookahead:
            depth += 1
            step = brtc_lookup(state_hash, state_tag)
            if step is None:
                break
            end_pc, end_taken_target = step
            if end_pc >= entry_pc:
                prefetch_range(entry_pc, end_pc)
            direction = predict(end_pc, spec_history)
            path_value *= probability(end_pc, spec_history)
            if path_value < threshold:
                break
            if direction:
                if end_taken_target is None:
                    break
                next_pc = end_taken_target
            else:
                next_pc = end_pc + 4
            state_hash = bb_hash(end_pc, direction, next_pc)
            state_tag = end_pc & 0xFFFFFFFF
            spec_history = (spec_history << 1) | (1 if direction else 0)
            entry_pc = next_pc
        self.total_depth += depth

    def _prefetch_instr_range(self, start_pc, end_pc):
        """Queue one predicted basic block's instruction blocks."""
        block_bytes = self.block_bytes
        first = start_pc & ~(block_bytes - 1)
        last = end_pc & ~(block_bytes - 1)
        limit = self.max_instr_blocks
        push = self.push_instr
        block = first
        while block <= last and limit > 0:
            push(block)
            block += block_bytes
            limit -= 1

    # -- checkpoint/restore -------------------------------------------

    def snapshot(self):
        state = super().snapshot()
        state.update({
            "brtc": self.brtc.snapshot(),
            "prev_hash": self._prev_hash,
            "prev_tag": self._prev_tag,
            "walks": self.walks,
            "total_depth": self.total_depth,
        })
        return state

    def restore(self, state):
        super().restore(state)
        self.brtc.restore(state["brtc"])
        self._prev_hash = state["prev_hash"]
        self._prev_tag = state["prev_tag"]
        self.walks = state["walks"]
        self.total_depth = state["total_depth"]


class CombinedIPrefetcher(_FTQRunAhead, BFetchIPrefetcher):
    """FDIP run-ahead + the B-Fetch-I walk sharing one queue and one
    dedup window -- the head-to-head's "combined" row."""

    name = "combined"


def make_iprefetcher(name, config, block_bytes=64, bfetch_config=None):
    """Instantiate the I-side prefetcher *name* (one of
    :data:`IPREFETCHER_NAMES`)."""
    if name == "none":
        return IPrefetcher(config, block_bytes=block_bytes)
    if name == "nextline-i":
        return NextLineIPrefetcher(config, block_bytes=block_bytes)
    if name == "fdip":
        return FDIPPrefetcher(config, block_bytes=block_bytes)
    if name == "bfetch-i":
        return BFetchIPrefetcher(config, block_bytes=block_bytes,
                                 bfetch_config=bfetch_config)
    if name == "combined":
        return CombinedIPrefetcher(config, block_bytes=block_bytes,
                                   bfetch_config=bfetch_config)
    raise ValueError(
        "unknown iprefetcher %r (choose from %s)"
        % (name, ", ".join(IPREFETCHER_NAMES))
    )
