"""Predecode stage: shadow-branch discovery on L1-I fills.

Whenever a line enters the L1-I (demand miss or prefetch issue) the
predecoder scans its instructions in the static program image -- the
model's stand-in for the predecode bits a real front end extracts from
the incoming cache line -- and installs the taken targets of *shadow
branches* into the BTB.  A shadow branch is a branch present in the
fetched block that is not the entry point of the fetch ("Exposing
Shadow Branches"): without the early fill the BPU run-ahead walker
cannot see it until it first executes, so the walker sails past it and
the FTQ flushes when the branch is actually taken.

Only direct branches (conditional + ``BR``) are installed -- their taken
target is static; ``JR`` targets stay last-target-predicted by the
normal execution-time BTB update.
"""

from repro.isa.opcodes import COND_BRANCHES, Op

_OP_JR = int(Op.JR)
_OP_BR = int(Op.BR)
_COND_OPS = frozenset(int(op) for op in COND_BRANCHES)


class Predecoder:
    """Scans filled L1-I blocks and fills the BTB with shadow branches.

    :param program: the static :class:`~repro.isa.Program` image.
    :param btb: the pipeline's shared
        :class:`~repro.branch.BranchTargetBuffer`.
    :param block_bytes: L1-I line size (fetch-block geometry).
    """

    def __init__(self, program, btb, block_bytes):
        shift = block_bytes.bit_length() - 1
        if 1 << shift != block_bytes:
            raise ValueError("block size must be a power of two, got %r"
                             % (block_bytes,))
        self.program = program
        self.btb = btb
        self.block_bytes = block_bytes
        self.block_shift = shift
        base = program.base_pc
        self._base_pc = base
        self._limit_pc = program.pc_of(len(program) - 1)
        # static per-instruction branch classification and direct taken
        # targets, precomputed once: the BPU walker probes these every
        # cycle and the scan must cost O(1) per instruction
        kinds = [None] * len(program)
        targets = [None] * len(program)
        for index, instr in enumerate(program.instrs):
            op = int(instr.op)
            if op in _COND_OPS:
                kinds[index] = "c"
                targets[index] = base + 4 * instr.target
            elif op == _OP_BR:
                kinds[index] = "u"
                targets[index] = base + 4 * instr.target
            elif op == _OP_JR:
                kinds[index] = "u"
        self._kinds = kinds
        self._targets = targets
        self._scanned = set()   # block numbers already predecoded
        self._shadow = set()    # shadow-installed branch PCs not yet seen
        # counters
        self.blocks = 0         # blocks predecoded
        self.shadow_fills = 0   # BTB entries installed ahead of execution
        self.shadow_hits = 0    # walker discoveries through a shadow fill

    # ------------------------------------------------------------------
    # static queries (the BPU walker's view)

    def branch_kind(self, pc):
        """``"c"``/``"u"``/None for the instruction at *pc* (None when
        *pc* is outside the program or not a branch)."""
        index = (pc - self._base_pc) >> 2
        if 0 <= index < len(self._kinds):
            return self._kinds[index]
        return None

    def note_hit(self, pc):
        """The walker found the branch at *pc* through the BTB; credit
        the shadow fill if it was never executed before."""
        shadow = self._shadow
        if pc in shadow:
            shadow.discard(pc)
            self.shadow_hits += 1

    # ------------------------------------------------------------------
    # fill-time scan

    def on_fill(self, addr, entry_pc=None):
        """A line entered the L1-I; scan it once and install shadow
        branches.

        :param entry_pc: the demanded PC for demand fills (the one
            non-shadow instruction); None for prefetched lines, whose
            branches are all shadow.
        """
        block = addr >> self.block_shift
        scanned = self._scanned
        if block in scanned:
            return
        scanned.add(block)
        self.blocks += 1
        base = self._base_pc
        kinds = self._kinds
        targets = self._targets
        block_bytes = self.block_bytes
        first_pc = block << self.block_shift
        start = (max(first_pc, base) - base) >> 2
        stop = min((first_pc + block_bytes - base) >> 2, len(kinds))
        btb_update = self.btb.update
        shadow = self._shadow
        for index in range(max(start, 0), stop):
            if kinds[index] is None:
                continue
            target = targets[index]
            if target is None:
                continue  # indirect: no static taken target
            pc = base + index * 4
            if pc == entry_pc:
                continue  # the entry point is not a shadow branch
            btb_update(pc, target)
            shadow.add(pc)
            self.shadow_fills += 1

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Scan/shadow sets and counters as a JSON-safe structure (the
        BTB installs themselves live in the BTB's own snapshot)."""
        return {
            "scanned": sorted(self._scanned),
            "shadow": sorted(self._shadow),
            "blocks": self.blocks,
            "shadow_fills": self.shadow_fills,
            "shadow_hits": self.shadow_hits,
        }

    def restore(self, state):
        self._scanned = set(int(block) for block in state["scanned"])
        self._shadow = set(int(pc) for pc in state["shadow"])
        self.blocks = state["blocks"]
        self.shadow_fills = state["shadow_fills"]
        self.shadow_hits = state["shadow_hits"]
