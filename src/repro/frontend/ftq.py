"""Fetch target queue.

A bounded FIFO of predicted fetch-block addresses, filled by the BPU
run-ahead walker and consumed by demand fetch.  Each entry also carries
an ``issued`` flag so the FDIP engine can mark blocks it has already
turned into L1-I prefetches without re-scanning its dedup window every
cycle.
"""

from collections import deque


class FetchTargetQueue:
    """Bounded FIFO of ``[block_addr, issued]`` entries.

    :param entries: capacity in fetch blocks.
    """

    def __init__(self, entries=32):
        if not isinstance(entries, int) or entries < 1:
            raise ValueError(
                "FetchTargetQueue entries must be a positive integer, "
                "got %r" % (entries,)
            )
        self.entries = entries
        self._queue = deque()

    def __len__(self):
        return len(self._queue)

    def full(self):
        return len(self._queue) >= self.entries

    def push(self, block_addr):
        """Enqueue a predicted fetch-block address; False when full."""
        if len(self._queue) >= self.entries:
            return False
        self._queue.append([block_addr, False])
        return True

    def pop(self):
        """Dequeue the oldest predicted block address, or None."""
        if not self._queue:
            return None
        return self._queue.popleft()[0]

    def clear(self):
        self._queue.clear()

    def pending(self, skip, limit):
        """Up to *limit* un-issued entries beyond the first *skip*
        (the FDIP scan window); the returned entries are live -- set
        ``entry[1] = True`` to mark them issued."""
        picked = []
        for index, entry in enumerate(self._queue):
            if index < skip:
                continue
            if not entry[1]:
                picked.append(entry)
                if len(picked) >= limit:
                    break
        return picked

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Queue contents as a JSON-safe structure (order is behaviour)."""
        return [[addr, bool(issued)] for addr, issued in self._queue]

    def restore(self, state):
        self._queue = deque([int(addr), bool(issued)]
                            for addr, issued in state)
