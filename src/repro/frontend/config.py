"""Front-end configuration knobs.

Kept separate from :class:`~repro.cpu.ooo.CoreConfig` so the timing core
stays frontend-agnostic: the core only carries the ``frontend`` mode
string, everything else lives here and flows into
:class:`~repro.frontend.DecoupledFrontEnd` at system assembly.
"""

#: legal values of ``CoreConfig.frontend`` / ``SystemConfig.frontend``
FRONTEND_MODES = ("off", "ftq")


class FrontendConfig:
    """Decoupled front-end parameters.

    :param ftq_entries: fetch target queue capacity in fetch blocks.
    :param fill_width: fetch blocks the BPU can enqueue per cycle.
    :param fdip_degree: FTQ entries the FDIP engine may turn into L1-I
        prefetches per cycle.
    :param fdip_distance: FTQ entries (nearest first) FDIP skips -- the
        in-flight fetch distance that demand fetch covers anyway.
    :param nextline_degree: sequential blocks the ``nextline-i``
        baseline pushes per demand L1-I miss.
    :param drain_rate: queued I-side prefetches issued into the
        hierarchy per cycle (mirrors ``CoreConfig.prefetch_drain_rate``).
    :param queue_capacity: bounded I-side prefetch request queue size.
    """

    def __init__(
        self,
        ftq_entries=32,
        fill_width=2,
        fdip_degree=4,
        fdip_distance=1,
        nextline_degree=2,
        drain_rate=2,
        queue_capacity=32,
    ):
        for field, value in (
            ("ftq_entries", ftq_entries),
            ("fill_width", fill_width),
            ("fdip_degree", fdip_degree),
            ("nextline_degree", nextline_degree),
            ("drain_rate", drain_rate),
            ("queue_capacity", queue_capacity),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    "FrontendConfig.%s must be a positive integer, got %r"
                    % (field, value)
                )
        if not isinstance(fdip_distance, int) or fdip_distance < 0:
            raise ValueError(
                "FrontendConfig.fdip_distance must be a non-negative "
                "integer, got %r" % (fdip_distance,)
            )
        self.ftq_entries = ftq_entries
        self.fill_width = fill_width
        self.fdip_degree = fdip_degree
        self.fdip_distance = fdip_distance
        self.nextline_degree = nextline_degree
        self.drain_rate = drain_rate
        self.queue_capacity = queue_capacity

    def key(self):
        """Stable identity tuple for result caching."""
        return (
            self.ftq_entries,
            self.fill_width,
            self.fdip_degree,
            self.fdip_distance,
            self.nextline_degree,
            self.drain_rate,
            self.queue_capacity,
        )
