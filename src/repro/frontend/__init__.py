"""Decoupled front end: FTQ-driven instruction fetch (DESIGN.md §13).

The branch-prediction unit runs ahead of fetch and enqueues predicted
fetch-block targets into a bounded :class:`FetchTargetQueue`; demand
fetch consumes the queue and goes through an L1-I + I-MSHR path, a
predecode stage scans every line filled into the L1-I and exposes
*shadow branches* (branches present in a fetched block but never the
entry point, "Exposing Shadow Branches") as early BTB fills, and an
I-side prefetcher family (``fdip`` run-ahead off the FTQ per
"Fetch-Directed Instruction Prefetching Revisited", a ``nextline-i``
baseline, and ``bfetch-i`` driving the B-Fetch lookahead walk at
fetch-block granularity) turns the run-ahead into L1-I fills.

Everything here is gated behind ``CoreConfig.frontend="ftq"``; the
default ``"off"`` leaves the legacy fetch path byte-identical.
"""

from repro.frontend.config import FRONTEND_MODES, FrontendConfig
from repro.frontend.frontend import DecoupledFrontEnd
from repro.frontend.ftq import FetchTargetQueue
from repro.frontend.iprefetch import (
    IPREFETCHER_NAMES,
    BFetchIPrefetcher,
    CombinedIPrefetcher,
    FDIPPrefetcher,
    IPrefetcher,
    NextLineIPrefetcher,
    make_iprefetcher,
)
from repro.frontend.predecode import Predecoder

__all__ = [
    "FRONTEND_MODES",
    "FrontendConfig",
    "DecoupledFrontEnd",
    "FetchTargetQueue",
    "IPREFETCHER_NAMES",
    "IPrefetcher",
    "NextLineIPrefetcher",
    "FDIPPrefetcher",
    "BFetchIPrefetcher",
    "CombinedIPrefetcher",
    "make_iprefetcher",
    "Predecoder",
]
