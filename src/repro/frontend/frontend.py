"""The decoupled front end orchestrator.

One :class:`DecoupledFrontEnd` per core, created at system assembly when
``CoreConfig.frontend="ftq"``.  The timing core calls exactly three
methods:

* :meth:`tick` once per ``step_cycle`` -- the BPU walker advances up to
  ``fill_width`` fetch blocks down the predicted path (BTB-visible
  branches only, which is what makes shadow-branch fills matter),
  enqueues them into the FTQ, lets the I-side prefetcher scan the queue
  and drains its request queue into the hierarchy.  This runs during
  I-miss and redirect stalls too -- that is the decoupling.
* :meth:`demand_fetch` when fetch crosses into a new block -- consumes
  the FTQ head (mismatch = flush + resteer), goes through the L1-I +
  I-MSHR demand path, and predecodes missed lines.
* :meth:`redirect` at every mispredict resolution -- flushes the
  run-ahead and restarts the walker at the resolved target.
"""


class DecoupledFrontEnd:
    """FTQ + predecode + I-side prefetch, wired between BPU and L1-I.

    :param config: :class:`~repro.frontend.FrontendConfig`.
    :param hierarchy: the core's :class:`~repro.memory.MemoryHierarchy`.
    :param predictor: shared direction predictor (read-only use).
    :param btb: shared :class:`~repro.branch.BranchTargetBuffer`.
    :param program: static :class:`~repro.isa.Program` image.
    :param iprefetcher: an :class:`~repro.frontend.IPrefetcher`.
    :param core_config: the owning :class:`~repro.cpu.ooo.CoreConfig`;
        its fetch-block geometry must agree with the hierarchy's.
    """

    def __init__(self, config, hierarchy, predictor, btb, program,
                 iprefetcher, core_config):
        from repro.frontend.ftq import FetchTargetQueue
        from repro.frontend.predecode import Predecoder
        block_bytes = hierarchy.config.block_bytes
        if core_config.block_bytes != block_bytes:
            raise ValueError(
                "front-end fetch-block geometry disagrees: core %dB vs "
                "hierarchy %dB lines (both must derive from "
                "HierarchyConfig.block_bytes)"
                % (core_config.block_bytes, block_bytes)
            )
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.btb = btb
        self.block_bytes = block_bytes
        self.block_shift = core_config.block_shift
        self._block_mask = ~(block_bytes - 1)
        self.ftq = FetchTargetQueue(config.ftq_entries)
        self.predecoder = Predecoder(program, btb, block_bytes)
        self.iprefetcher = iprefetcher
        iprefetcher.predecode = self.predecoder.on_fill
        # BPU run-ahead cursor: the next PC the walker predicts from;
        # None = stalled (ran past the program) until the next resteer
        self._bpu_pc = program.pc_of(0)
        self._last_pc = program.pc_of(len(program) - 1)
        # counters
        self.ftq_enqueued = 0
        self.ftq_hits = 0        # demand fetch matched the FTQ head
        self.ftq_mismatches = 0  # head existed but named another block
        self.ftq_empty = 0       # demand fetch found the queue empty
        self.ftq_flushes = 0     # mismatch-driven full flushes
        self.redirects = 0       # mispredict-resolution resteers
        self.bpu_stalls = 0      # ticks spent with a stalled walker
        self.occupancy_sum = 0
        self.occupancy_samples = 0
        self.demand_fetches = 0
        self.demand_misses = 0
        # tracing (None = "frontend" category disabled)
        self._trace = None

    def bind_tracer(self, tracer):
        """Cache the tracer's ``frontend`` channel (None disables)."""
        self._trace = (
            tracer.channel("frontend") if tracer is not None else None
        )
        self.iprefetcher.bind_tracer(tracer)

    # ------------------------------------------------------------------
    # per-cycle advance

    def tick(self, now):
        """Advance the BPU run-ahead and the I-side prefetcher."""
        ftq = self.ftq
        self.occupancy_sum += len(ftq)
        self.occupancy_samples += 1
        pc = self._bpu_pc
        if pc is None:
            self.bpu_stalls += 1
        else:
            fill = self.config.fill_width
            trace = self._trace
            while fill > 0 and pc is not None and not ftq.full():
                block_pc = pc & self._block_mask
                ftq.push(block_pc)
                self.ftq_enqueued += 1
                if trace is not None:
                    trace.emit("ftq", now, action="enqueue", block=block_pc,
                               occupancy=len(ftq))
                pc = self._walk_next(pc)
                fill -= 1
            self._bpu_pc = pc
        iprefetcher = self.iprefetcher
        iprefetcher.on_ftq(ftq, now)
        if len(iprefetcher.queue):
            iprefetcher.drain(self.hierarchy, now, self.config.drain_rate)

    def _walk_next(self, pc):
        """One walker step: from *pc*, return the entry PC of the next
        predicted fetch block, or None when the walker must stall.

        Only BTB-visible branches steer the walk -- a branch that never
        executed and was never shadow-filled is invisible, the walker
        falls through it, and the FTQ flushes when it turns out taken.
        """
        predecoder = self.predecoder
        branch_kind = predecoder.branch_kind
        peek = self.btb.peek
        predict = self.predictor.predict
        block_end = (pc | (self.block_bytes - 1)) + 1
        last_pc = self._last_pc
        p = pc
        while p < block_end:
            if p > last_pc:
                return None  # ran past the program image
            kind = branch_kind(p)
            if kind is not None:
                target = peek(p)
                if target is not None:
                    predecoder.note_hit(p)
                    if kind == "u" or predict(p):
                        return target
                # BTB-invisible branch, or predicted not-taken: fall
                # through and keep scanning the block
            p += 4
        return block_end if block_end <= last_pc else None

    # ------------------------------------------------------------------
    # demand fetch path

    def demand_fetch(self, pc, now):
        """Fetch crossed into the block holding *pc*; returns latency."""
        self.demand_fetches += 1
        block_pc = pc & self._block_mask
        ftq = self.ftq
        head = ftq.pop()
        if head == block_pc:
            self.ftq_hits += 1
        elif head is None:
            # walker is behind (or stalled): consume virtually when its
            # cursor already points into this block, else resteer
            self.ftq_empty += 1
            cursor = self._bpu_pc
            if cursor is not None and (cursor & self._block_mask) == block_pc:
                self._bpu_pc = self._walk_next(cursor)
            else:
                self._bpu_pc = self._walk_next(pc)
        else:
            # predicted path diverged from the actual one
            self.ftq_mismatches += 1
            self.ftq_flushes += 1
            ftq.clear()
            trace = self._trace
            if trace is not None:
                trace.emit("ftq", now, action="flush", expected=head,
                           actual=block_pc)
            self._bpu_pc = self._walk_next(pc)
        latency, hit = self.hierarchy.ifetch_demand(pc, now)
        if not hit:
            self.demand_misses += 1
            self.predecoder.on_fill(block_pc, entry_pc=pc)
            trace = self._trace
            if trace is not None:
                trace.emit("ifill", now, addr=block_pc, latency=latency,
                           demand=True)
        self.iprefetcher.on_ifetch(pc, hit, now)
        return latency

    def redirect(self, pc, now):
        """A mispredict resolved to *pc*: flush and resteer the BPU."""
        self.redirects += 1
        self.ftq.clear()
        self._bpu_pc = pc
        trace = self._trace
        if trace is not None:
            trace.emit("ftq", now, action="redirect", pc=pc)

    def busy(self):
        """Whether the front end still has same-cycle work (keeps the
        core from idle-skipping over run-ahead and drain cycles)."""
        if len(self.iprefetcher.queue):
            return True
        return self._bpu_pc is not None and not self.ftq.full()

    # ------------------------------------------------------------------
    # reporting

    @property
    def mean_occupancy(self):
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples

    def stats_dict(self):
        """Counters as a JSON-safe dict (RunResult payload block)."""
        predecoder = self.predecoder
        return {
            "ftq_enqueued": self.ftq_enqueued,
            "ftq_hits": self.ftq_hits,
            "ftq_mismatches": self.ftq_mismatches,
            "ftq_empty": self.ftq_empty,
            "ftq_flushes": self.ftq_flushes,
            "redirects": self.redirects,
            "bpu_stalls": self.bpu_stalls,
            "ftq_occupancy_sum": self.occupancy_sum,
            "ftq_occupancy_samples": self.occupancy_samples,
            "demand_fetches": self.demand_fetches,
            "demand_misses": self.demand_misses,
            "predecoded_blocks": predecoder.blocks,
            "shadow_fills": predecoder.shadow_fills,
            "shadow_hits": predecoder.shadow_hits,
        }

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Front-end state as a JSON-safe structure (the BTB, predictor
        and L1-I snapshot themselves at the system level)."""
        return {
            "ftq": self.ftq.snapshot(),
            "bpu_pc": self._bpu_pc,
            "predecode": self.predecoder.snapshot(),
            "iprefetch": self.iprefetcher.snapshot(),
            "ftq_enqueued": self.ftq_enqueued,
            "ftq_hits": self.ftq_hits,
            "ftq_mismatches": self.ftq_mismatches,
            "ftq_empty": self.ftq_empty,
            "ftq_flushes": self.ftq_flushes,
            "redirects": self.redirects,
            "bpu_stalls": self.bpu_stalls,
            "occupancy_sum": self.occupancy_sum,
            "occupancy_samples": self.occupancy_samples,
            "demand_fetches": self.demand_fetches,
            "demand_misses": self.demand_misses,
        }

    def restore(self, state):
        self.ftq.restore(state["ftq"])
        bpu_pc = state["bpu_pc"]
        self._bpu_pc = int(bpu_pc) if bpu_pc is not None else None
        self.predecoder.restore(state["predecode"])
        self.iprefetcher.restore(state["iprefetch"])
        self.ftq_enqueued = state["ftq_enqueued"]
        self.ftq_hits = state["ftq_hits"]
        self.ftq_mismatches = state["ftq_mismatches"]
        self.ftq_empty = state["ftq_empty"]
        self.ftq_flushes = state["ftq_flushes"]
        self.redirects = state["redirects"]
        self.bpu_stalls = state["bpu_stalls"]
        self.occupancy_sum = state["occupancy_sum"]
        self.occupancy_samples = state["occupancy_samples"]
        self.demand_fetches = state["demand_fetches"]
        self.demand_misses = state["demand_misses"]
