#!/usr/bin/env python
"""The whole prefetcher zoo on one benchmark, with cost accounting.

Runs every implemented prefetcher — the paper's light-weight class
(Next-N, Stride, SMS, B-Fetch), the heavy-weight class (ISB, STeMS),
the related-work Tango baseline and the Perfect oracle — and prints
speedup, accuracy, state size, and first-order dynamic energy.

    python examples/prefetcher_zoo.py [benchmark] [instructions]
"""

import sys

from repro.analysis.energy import prefetcher_energy
from repro.sim import System, SystemConfig
from repro.workloads import build_workload

ZOO = ("none", "nextn", "stride", "tango", "sms", "isb", "stems",
       "bfetch", "perfect")


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    workload = build_workload(benchmark)

    print("benchmark: %s (%d instructions)" % (benchmark, instructions))
    print("%-8s %8s %9s %9s %10s %10s" %
          ("config", "speedup", "demanded", "useless", "state KB",
           "energy nJ"))
    baseline_ipc = None
    for name in ZOO:
        system = System(workload, SystemConfig(prefetcher=name))
        result = system.run(instructions)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        stats = result.data["prefetch"]
        bits = system.prefetcher.storage_bits()
        energy = prefetcher_energy(
            result, name, bits, getattr(system.prefetcher, "walks", None)
        ).total_pj / 1000.0
        print("%-8s %7.2fx %9d %9d %10.2f %10.1f" % (
            name, result.ipc / baseline_ipc,
            stats["useful"] + stats["late"],  # demanded (disjoint counters)
            stats["useless"], bits / 8192.0, energy,
        ))
    print("\n(state KB for isb/stems is *grown metadata* -- the originals "
          "keep it off-chip;\n energy is the first-order model of "
          "docs/methodology.md)")


if __name__ == "__main__":
    main()
