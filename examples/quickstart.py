#!/usr/bin/env python
"""Quickstart: compare prefetchers on one benchmark.

Runs the `libquantum` stand-in (a DRAM-bound streaming workload) under
no prefetching, Stride, SMS and B-Fetch, and prints IPC, speedup and
prefetch accuracy for each.

    python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import ExperimentRunner

PREFETCHERS = ("none", "stride", "sms", "bfetch")


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000

    runner = ExperimentRunner()
    baseline = runner.run_single(benchmark, "none", instructions)

    print("benchmark: %s  (%d instructions)" % (benchmark, instructions))
    print("%-8s %7s %8s %9s %9s %9s" %
          ("config", "IPC", "speedup", "demanded", "useless", "accuracy"))
    for prefetcher in PREFETCHERS:
        result = runner.run_single(benchmark, prefetcher, instructions)
        stats = result.data["prefetch"]
        # useful / late / useless are disjoint: "demanded" = useful + late
        demanded = stats["useful"] + stats["late"]
        resolved = demanded + stats["useless"]
        accuracy = demanded / resolved if resolved else float("nan")
        print("%-8s %7.3f %7.2fx %9d %9d %8.1f%%" % (
            prefetcher,
            result.ipc,
            result.ipc / baseline.ipc,
            demanded,
            stats["useless"],
            100 * accuracy,
        ))

    bfetch = runner.run_single(benchmark, "bfetch", instructions)
    print("\nB-Fetch internals:")
    print("  mean lookahead depth: %.1f basic blocks"
          % bfetch.data["mean_lookahead_depth"])
    print("  BrTC hit rate:        %.1f%%"
          % (100 * bfetch.data["brtc_hit_rate"]))
    print("  MHT hit rate:         %.1f%%"
          % (100 * bfetch.data["mht_hit_rate"]))


if __name__ == "__main__":
    main()
