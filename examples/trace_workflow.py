#!/usr/bin/env python
"""Trace capture and replay workflow.

Captures a frozen dynamic trace of a workload, then drives the timing
core from the trace twice — once per prefetcher — for a perfectly
controlled A/B comparison (identical instruction streams, no functional
re-execution).

    python examples/trace_workflow.py [benchmark] [instructions]
"""

import sys
import tempfile

from repro.branch import BranchTargetBuffer, CompositeConfidenceEstimator
from repro.branch.tournament import TournamentPredictor
from repro.cpu import TraceReplay, save_trace
from repro.cpu.ooo import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetchers import NextNPrefetcher, Prefetcher, StridePrefetcher
from repro.workloads import build_workload


def run_from_trace(workload, trace_path, prefetcher, budget):
    replay = TraceReplay.load(workload.program, trace_path)
    core = OutOfOrderCore(
        replay,
        MemoryHierarchy(),
        TournamentPredictor(),
        CompositeConfidenceEstimator(),
        BranchTargetBuffer(),
        prefetcher,
    )
    cycles = core.run(budget)
    return budget / cycles


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    workload = build_workload(benchmark)

    with tempfile.NamedTemporaryFile("w", suffix=".trace",
                                     delete=False) as handle:
        trace_path = handle.name
    records = save_trace(trace_path, workload, instructions)
    print("captured %d dynamic instructions of %s to %s"
          % (records, benchmark, trace_path))

    budget = instructions - 100  # leave headroom at the trace tail
    for prefetcher in (Prefetcher(), NextNPrefetcher(n=4),
                       StridePrefetcher()):
        ipc = run_from_trace(workload, trace_path, prefetcher, budget)
        print("  %-7s ipc=%.3f" % (prefetcher.name, ipc))
    print("(same trace, same predictor state evolution -- any IPC "
          "difference is the prefetcher's)")


if __name__ == "__main__":
    main()
