#!/usr/bin/env python
"""The paper's Figure 2 scenario, hand-written in the reproduction ISA.

Builds a kernel whose load address depends on *which way a data-dependent
branch went* -- a per-PC stride table sees an irregular address stream,
but each (branch, direction) pair leaves a stable offset from the walk
register, which is exactly the correlation B-Fetch's MHT learns.

The script runs the kernel under every prefetcher and then dumps the
learned Memory History Table entries so you can see the path-specific
offsets (one per branch direction).

    python examples/figure2_kernel.py
"""

import random

from repro.isa import assemble
from repro.sim import System, SystemConfig
from repro.workloads import Workload

KERNEL = """
        li   r9,  0x300000     ; predicate array
        li   r12, 0x800000     ; record walk pointer
outer:  li   r16, 400
        li   r9,  0x300000
loop:   load r5, 0(r9)         ; data-dependent direction
        bnez r5, big
        addi r12, r12, 64      ; small step
        br   join
big:    addi r12, r12, 320     ; large step
join:   load r1, 0(r12)        ; the load B-Fetch must cover
        add  r4, r4, r1
        addi r9, r9, 8
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""


def build_workload():
    rng = random.Random(42)
    memory = {}
    for i in range(400):
        memory[0x300000 + i * 8] = 1 if rng.random() < 0.9 else 0
    return Workload("figure2", assemble(KERNEL), memory)


def main():
    workload = build_workload()
    instructions = 60_000

    print("prefetcher comparison on the Fig. 2 kernel:")
    baseline_ipc = None
    for prefetcher in ("none", "stride", "sms", "bfetch"):
        system = System(workload, SystemConfig(prefetcher=prefetcher))
        system.core.run(instructions)
        if baseline_ipc is None:
            baseline_ipc = system.core.ipc
        print("  %-7s ipc=%.3f speedup=%.2fx" % (
            prefetcher, system.core.ipc, system.core.ipc / baseline_ipc))
        if prefetcher == "bfetch":
            bfetch_system = system

    print("\nlearned MHT entries (register-history slots):")
    prefetcher = bfetch_system.prefetcher
    for index, entry in enumerate(prefetcher.mht.table):
        if entry is None:
            continue
        for slot in entry.slots:
            if not slot.valid:
                continue
            print(
                "  entry %3d  branch tag 0x%x  reg r%-2d  offset %+5d  "
                "loopdelta %+5d  pospatt %#04x"
                % (index, entry.tag, slot.regidx, slot.offset,
                   slot.loopdelta, slot.pospatt)
            )
    print(
        "\nNote the walk register (r12) appears with distinct stable "
        "offsets\nfor the two paths into the join block -- the paper's "
        "Fig. 2 insight."
    )


if __name__ == "__main__":
    main()
