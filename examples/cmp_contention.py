#!/usr/bin/env python
"""Multiprogrammed "friendly fire": prefetch accuracy in a shared LLC.

Runs a 4-application mix on the CMP model (shared LLC + DRAM channel)
with each prefetcher and reports the normalized weighted speedup plus
per-application useless-prefetch counts -- the paper's argument for why
accuracy matters more as core count grows (Section V-B2).

    python examples/cmp_contention.py [apps...]
"""

import sys

from repro import CMPSystem, ExperimentRunner, SystemConfig, build_workload
from repro.sim.metrics import weighted_speedup

DEFAULT_MIX = ("libquantum", "leslie3d", "mcf", "sphinx")


def main():
    mix = tuple(sys.argv[1:]) or DEFAULT_MIX
    per_app = 30_000
    runner = ExperimentRunner()

    print("mix: %s  (%d instructions per app)" % (", ".join(mix), per_app))
    singles = [runner.run_single(name, "none", per_app).ipc for name in mix]

    baseline_ws = None
    print("%-8s %10s %12s %16s" %
          ("config", "wspeedup", "normalized", "useless prefetch"))
    for prefetcher in ("none", "stride", "sms", "bfetch"):
        cmp_system = CMPSystem(
            [build_workload(name) for name in mix],
            SystemConfig(prefetcher=prefetcher),
        )
        results = cmp_system.run(per_app)
        ws = weighted_speedup([r.ipc for r in results], singles,
                              benchmarks=mix)
        if baseline_ws is None:
            baseline_ws = ws
        useless = sum(r.data["prefetch"]["useless"] for r in results)
        print("%-8s %10.3f %11.2fx %16d" %
              (prefetcher, ws, ws / baseline_ws, useless))

    print("\nshared LLC size: %.1f MB (2MB per core, Table II)"
          % (cmp_system.llc.size_bytes / (1024 * 1024)))


if __name__ == "__main__":
    main()
