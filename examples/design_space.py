#!/usr/bin/env python
"""B-Fetch design-space exploration on one benchmark.

Sweeps the two knobs the paper studies in its sensitivity analysis --
path-confidence threshold (Fig. 12) and table storage (Fig. 15) -- plus
the per-load filter threshold, and prints speedup / accuracy / mean
lookahead depth for each point.

    python examples/design_space.py [benchmark]
"""

import sys

from repro import ExperimentRunner, SystemConfig
from repro.core import BFetchConfig

INSTRUCTIONS = 60_000


def run_point(runner, benchmark, label, config):
    base = runner.run_single(benchmark, "none", INSTRUCTIONS)
    result = runner.run_single(
        benchmark, "bfetch", INSTRUCTIONS,
        SystemConfig(prefetcher="bfetch", bfetch=config),
    )
    stats = result.data["prefetch"]
    # useful / late / useless are disjoint: "demanded" = useful + late
    demanded = stats["useful"] + stats["late"]
    resolved = demanded + stats["useless"]
    accuracy = 100.0 * demanded / resolved if resolved else 0.0
    print("  %-22s speedup=%.2fx depth=%4.1f accuracy=%5.1f%% issued=%d" % (
        label,
        result.ipc / base.ipc,
        result.data["mean_lookahead_depth"],
        accuracy,
        stats["issued"],
    ))


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    runner = ExperimentRunner()
    print("benchmark: %s" % benchmark)

    print("\npath-confidence threshold sweep (Fig. 12):")
    for threshold in (0.45, 0.60, 0.75, 0.90):
        run_point(runner, benchmark, "confidence %.2f" % threshold,
                  BFetchConfig(path_confidence_threshold=threshold))

    print("\nstorage sweep, BrTC/MHT entries (Fig. 15):")
    for entries in (64, 128, 256, 512):
        run_point(runner, benchmark, "%d BrTC entries" % entries,
                  BFetchConfig.sized(entries))

    print("\nper-load filter:")
    run_point(runner, benchmark, "filter on (thr 3)", BFetchConfig())
    run_point(runner, benchmark, "filter off",
              BFetchConfig(use_filter=False))

    print("\nloop detection:")
    run_point(runner, benchmark, "loop prefetch on", BFetchConfig())
    run_point(runner, benchmark, "loop prefetch off",
              BFetchConfig(loop_prefetch=False))


if __name__ == "__main__":
    main()
